package simnet

// TCP transport: the same synchronous-network semantics (round barrier,
// boundary delivery, deterministic ordering) with every inter-player
// message crossing a real TCP loopback connection instead of shared
// memory. Protocol code is unchanged — it still talks to *Node — but the
// wire encodings genuinely travel through the kernel's network stack,
// which exercises framing and catches any accidental sharing of buffers
// between players.
//
// The round barrier itself stays in-process (synchrony is part of the
// paper's model, §2; in a real deployment it would come from clocks and
// timeouts). Correct delivery does not rely on scheduling luck: a round is
// committed only after every active player has both reached the barrier
// and had its per-connection end-of-round marker processed, and TCP's
// in-order delivery guarantees all of that player's round messages
// precede the marker.

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

const (
	frameHello byte = iota + 1
	frameData
	frameBroadcast
	frameDone
)

// tcpTransport holds the full mesh of loopback connections.
type tcpTransport struct {
	n     int
	conns [][]net.Conn // conns[from][to], nil on the diagonal
	lns   []net.Listener

	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewTCP creates a network of n nodes whose messages travel over real TCP
// loopback connections. Call Close when done to release sockets.
//
// Mesh setup runs in three steps — listen, accept (in background), dial —
// so each failure mode (port exhaustion, refused dial, bad hello) surfaces
// from its own stage with the sockets opened so far released.
func NewTCP(n int, opts ...Option) (*Network, error) {
	nw := New(n, opts...)
	tr := &tcpTransport{n: n}
	nw.tcp = tr
	nw.tcpDone = make([]int, n)

	if err := tr.listenAll(); err != nil {
		tr.close()
		return nil, err
	}
	accepted := tr.acceptAll(nw)
	if err := tr.dialAll(); err != nil {
		tr.close()
		return nil, err
	}
	if err := <-accepted; err != nil {
		tr.close()
		return nil, err
	}
	return nw, nil
}

// listenAll opens one loopback listener per node.
func (tr *tcpTransport) listenAll() error {
	tr.conns = make([][]net.Conn, tr.n)
	for i := range tr.conns {
		tr.conns[i] = make([]net.Conn, tr.n)
	}
	tr.lns = make([]net.Listener, tr.n)
	for i := 0; i < tr.n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("simnet: listen: %w", err)
		}
		tr.lns[i] = ln
	}
	return nil
}

// acceptAll starts the accept side: every node accepts n−1 connections,
// each identified by a hello frame, and hands them to reader goroutines.
// The returned channel yields the first accept error (or nil) once every
// node has its full incoming fan-in.
func (tr *tcpTransport) acceptAll(nw *Network) <-chan error {
	var acceptWG sync.WaitGroup
	acceptErr := make([]error, tr.n)
	for i := 0; i < tr.n; i++ {
		acceptWG.Add(1)
		go func(i int) {
			defer acceptWG.Done()
			for c := 0; c < tr.n-1; c++ {
				conn, err := tr.lns[i].Accept()
				if err != nil {
					acceptErr[i] = err
					return
				}
				from, err := readHello(conn)
				if err != nil || from < 0 || from >= tr.n {
					acceptErr[i] = fmt.Errorf("simnet: bad hello: %v", err)
					conn.Close()
					return
				}
				tr.wg.Add(1)
				go nw.tcpReaderFor(from, i, conn)
			}
		}(i)
	}
	done := make(chan error, 1)
	go func() {
		acceptWG.Wait()
		for _, err := range acceptErr {
			if err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	return done
}

// dialAll completes the mesh: every node dials every other node's listener
// and introduces itself with a hello frame.
func (tr *tcpTransport) dialAll() error {
	for from := 0; from < tr.n; from++ {
		for to := 0; to < tr.n; to++ {
			if from == to {
				continue
			}
			conn, err := net.Dial("tcp", tr.lns[to].Addr().String())
			if err != nil {
				return fmt.Errorf("simnet: dial %d→%d: %w", from, to, err)
			}
			tr.conns[from][to] = conn
			if err := writeHello(conn, from); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close shuts down the TCP mesh or the multi-process peer transport (no-op
// for in-memory networks). Safe to call multiple times.
func (nw *Network) Close() {
	if nw.pn != nil {
		nw.pn.close()
		return
	}
	if nw.tcp == nil {
		return
	}
	nw.mu.Lock()
	if nw.closedErr == nil {
		nw.closedErr = fmt.Errorf("simnet: network closed")
	}
	nw.cond.Broadcast()
	nw.mu.Unlock()
	nw.tcp.close()
}

func (tr *tcpTransport) close() {
	tr.closeOnce.Do(func() {
		for _, ln := range tr.lns {
			if ln != nil {
				ln.Close()
			}
		}
		for _, row := range tr.conns {
			for _, c := range row {
				if c != nil {
					c.Close()
				}
			}
		}
	})
	tr.wg.Wait()
}

// tcpFlush writes the node's staged remote messages plus end-of-round
// markers to every outgoing connection. Called WITHOUT the network lock
// (socket writes may block; the reader goroutines need the lock to drain).
func (nw *Network) tcpFlush(nd *Node) error {
	tr := nw.tcp
	for _, s := range nd.outbox {
		switch {
		case s.to == nd.idx:
			// self-delivery is staged locally in EndRound
		case s.to >= 0:
			if err := writeFrame(tr.conns[nd.idx][s.to], frameData, nd.round, s.msg.Payload); err != nil {
				return fmt.Errorf("simnet: send to %d: %w", s.to, err)
			}
		default: // broadcast
			for to := 0; to < nw.n; to++ {
				if to == nd.idx {
					continue
				}
				if err := writeFrame(tr.conns[nd.idx][to], frameBroadcast, nd.round, s.msg.Payload); err != nil {
					return fmt.Errorf("simnet: broadcast to %d: %w", to, err)
				}
			}
		}
	}
	for to := 0; to < nw.n; to++ {
		if to == nd.idx {
			continue
		}
		if err := writeFrame(tr.conns[nd.idx][to], frameDone, nd.round, nil); err != nil {
			return fmt.Errorf("simnet: done marker to %d: %w", to, err)
		}
	}
	return nil
}

// stageLocalTCP stages the node's self-addressed traffic (self-sends and
// its own broadcast copies). Caller holds nw.mu.
func (nw *Network) stageLocalTCP(nd *Node) {
	for _, s := range nd.outbox {
		m := s.msg
		m.seq = nw.seq
		nw.seq++
		switch {
		case s.to == nd.idx:
			nw.staging[nd.idx] = append(nw.staging[nd.idx], m)
		case s.to < 0:
			nw.staging[nd.idx] = append(nw.staging[nd.idx], m)
		}
	}
	nd.outbox = nd.outbox[:0]
}

// tcpReaderFor ingests frames from the (from → to) connection into the
// shared staging area. Runs until the connection closes. TCP preserves
// order, so by the time a round's done marker is processed every data
// frame the sender emitted in that round has already been staged.
func (nw *Network) tcpReaderFor(from, to int, conn net.Conn) {
	defer nw.tcp.wg.Done()
	defer conn.Close()
	for {
		typ, round, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		nw.mu.Lock()
		switch typ {
		case frameData, frameBroadcast:
			kind := Unicast
			if typ == frameBroadcast {
				kind = Broadcast
			}
			nw.staging[to] = append(nw.staging[to], Message{
				From:    from,
				Kind:    kind,
				Payload: payload,
				seq:     nw.seq,
			})
			nw.seq++
		case frameDone:
			if round == nw.round {
				nw.tcpDone[from]++
				if nw.arrived == nw.active && nw.tcpReadyLocked() {
					nw.commitLocked()
				}
			}
			// A marker for a different round can only be stale (the
			// sender halted after a partial flush); ignore it.
		}
		nw.mu.Unlock()
	}
}

func writeHello(conn net.Conn, from int) error {
	return writeFrame(conn, frameHello, from, nil)
}

func readHello(conn net.Conn) (int, error) {
	typ, from, _, err := readFrame(conn)
	if err != nil {
		return -1, err
	}
	if typ != frameHello {
		return -1, fmt.Errorf("simnet: expected hello, got %d", typ)
	}
	return from, nil
}

// writeFrame: [type:1][arg:4][len:4][payload].
func writeFrame(conn net.Conn, typ byte, arg int, payload []byte) error {
	hdr := make([]byte, 9, 9+len(payload))
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(arg))
	binary.LittleEndian.PutUint32(hdr[5:], uint32(len(payload)))
	_, err := conn.Write(append(hdr, payload...))
	return err
}

func readFrame(conn net.Conn) (typ byte, arg int, payload []byte, err error) {
	var hdr [9]byte
	if _, err = io.ReadFull(conn, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	typ = hdr[0]
	arg = int(int32(binary.LittleEndian.Uint32(hdr[1:])))
	length := binary.LittleEndian.Uint32(hdr[5:])
	if length > 1<<24 {
		return 0, 0, nil, fmt.Errorf("simnet: oversized frame (%d bytes)", length)
	}
	if length > 0 {
		payload = make([]byte, length)
		if _, err = io.ReadFull(conn, payload); err != nil {
			return 0, 0, nil, err
		}
	}
	return typ, arg, payload, nil
}
