package gf2k

import "fmt"

// Table-driven multiplication for small fields, echoing the paper's §2
// remark that small-field operations can be implemented "via a table". For
// k ≤ tableMaxK, WithTables returns a field whose Mul/Inv run through
// log/antilog tables (two lookups and an addition mod 2^k−1), which is
// faster than carry-less multiplication for the tiny fields used in the
// soundness experiments. Larger k keep the carry-less path.

// tableMaxK bounds table construction: 2^16 entries ≈ 1 MB of tables.
const tableMaxK = 16

// tables holds discrete log/antilog tables w.r.t. a fixed generator.
type tables struct {
	log []uint32 // log[a] for a ≥ 1; log[0] unused
	exp []uint64 // exp[i] = g^i for i < 2(p−1), doubled to skip a mod
}

// WithTables returns a copy of the field using log/antilog multiplication
// tables. Only available for k ≤ 16; construction is O(2^k).
func (f Field) WithTables() (Field, error) {
	if f.k > tableMaxK {
		return Field{}, fmt.Errorf("gf2k: tables limited to k ≤ %d, got %d", tableMaxK, f.k)
	}
	order := (uint64(1) << f.k) - 1
	tb := &tables{
		log: make([]uint32, order+1),
		exp: make([]uint64, 2*order),
	}
	g, err := f.findGenerator()
	if err != nil {
		return Field{}, err
	}
	x := Element(1)
	for i := uint64(0); i < order; i++ {
		tb.exp[i] = uint64(x)
		tb.exp[i+order] = uint64(x)
		tb.log[x] = uint32(i)
		x = f.mulUncounted(x, g)
	}
	f.tbl = tb
	return f, nil
}

// HasTables reports whether this field instance multiplies through tables.
func (f Field) HasTables() bool { return f.tbl != nil }

// findGenerator locates a multiplicative generator by order testing.
func (f Field) findGenerator() (Element, error) {
	order := (uint64(1) << f.k) - 1
	factors := primeDivisorsU64(order)
	for cand := Element(2); uint64(cand) <= order; cand++ {
		ok := true
		for _, p := range factors {
			if f.Exp(cand, order/p) == 1 {
				ok = false
				break
			}
		}
		if ok {
			return cand, nil
		}
	}
	return 0, fmt.Errorf("gf2k: no generator found for GF(2^%d)", f.k)
}

func primeDivisorsU64(n uint64) []uint64 {
	var out []uint64
	for p := uint64(2); p*p <= n; p++ {
		if n%p == 0 {
			out = append(out, p)
			for n%p == 0 {
				n /= p
			}
		}
	}
	if n > 1 {
		out = append(out, n)
	}
	return out
}

// mulTable multiplies via log/antilog lookup. Caller guarantees tbl != nil.
func (f Field) mulTable(a, b Element) Element {
	if a == 0 || b == 0 {
		return 0
	}
	return Element(f.tbl.exp[uint64(f.tbl.log[a])+uint64(f.tbl.log[b])])
}

// invTable inverts via the log table. Caller guarantees tbl != nil, a != 0.
func (f Field) invTable(a Element) Element {
	order := (uint64(1) << f.k) - 1
	return Element(f.tbl.exp[(order-uint64(f.tbl.log[a]))%order])
}
