// Package adversary collects reusable Byzantine behaviours for tests,
// experiments and examples, in three tiers:
//
//   - Protocol-agnostic player faults (this file): constructors returning a
//     simnet.PlayerFunc — crash, omission, garbage, replay — dropped in
//     place of an honest player's protocol code.
//   - Protocol-aware attacks (attacks.go): players that speak a protocol's
//     wire format well enough to cheat inside it — wrong-degree and
//     inconsistent VSS dealers, lying verifiers, phase-king griefers, a
//     deviant Coin-Gen dealer.
//   - Message-level strategies (strategy.go): a composable, seeded
//     simnet.Interceptor that binds tamper/drop/duplicate/misdeliver
//     effects to senders, receivers and rounds, for attacks on traffic the
//     corrupted sender's code never sees (equivocation, selective
//     delivery).
//
// ParseSpec (spec.go) maps a textual fault assignment to these
// constructors, giving the CLI and the test tree one shared vocabulary.
package adversary

import (
	"fmt"
	"math/rand"

	"repro/internal/simnet"
)

// Crash returns a player that halts immediately — the classic crash fault.
// Because simnet removes halted players from the round barrier, the
// remaining players observe pure silence from it.
func Crash() simnet.PlayerFunc {
	return func(nd *simnet.Node) (interface{}, error) {
		return nil, nil
	}
}

// CrashAfter returns a player that participates silently (sending nothing)
// for `rounds` rounds and then halts.
func CrashAfter(rounds int) simnet.PlayerFunc {
	return func(nd *simnet.Node) (interface{}, error) {
		for r := 0; r < rounds; r++ {
			if _, err := nd.EndRound(); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}
}

// Silent returns a player that stays in lockstep forever but never sends a
// message — an omission fault that, unlike Crash, keeps consuming rounds.
// It runs until the network errors out (protocol end); that terminating
// error is surfaced with the node's context rather than swallowed, so
// orchestrators that treat any player error as fatal must exempt their
// designated faulty players (as cmd/dprbgsim and the conformance suite do).
func Silent() simnet.PlayerFunc {
	return func(nd *simnet.Node) (interface{}, error) {
		for {
			if _, err := nd.EndRound(); err != nil {
				return nil, fmt.Errorf("adversary: silent player %d stopped at round %d: %w",
					nd.Index(), nd.Round(), err)
			}
		}
	}
}

// SilentFor returns a player silent for `rounds` rounds; the caller's
// continuation runs afterwards (for recovery scenarios).
func SilentFor(rounds int, then simnet.PlayerFunc) simnet.PlayerFunc {
	return func(nd *simnet.Node) (interface{}, error) {
		for r := 0; r < rounds; r++ {
			if _, err := nd.EndRound(); err != nil {
				return nil, err
			}
		}
		if then == nil {
			return nil, nil
		}
		return then(nd)
	}
}

// GarbageSpammer returns a player that sends random junk of random sizes to
// every other player each round, with per-receiver differences (maximal
// equivocation), for `rounds` rounds.
func GarbageSpammer(seed int64, rounds, maxLen int) simnet.PlayerFunc {
	return func(nd *simnet.Node) (interface{}, error) {
		rng := rand.New(rand.NewSource(seed + int64(nd.Index())))
		for r := 0; r < rounds; r++ {
			for i := 0; i < nd.N(); i++ {
				if i == nd.Index() {
					continue
				}
				junk := make([]byte, rng.Intn(maxLen+1))
				rng.Read(junk)
				nd.Send(i, junk)
			}
			if _, err := nd.EndRound(); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}
}

// Replayer returns a player that echoes back to each sender whatever that
// sender sent it in the previous round — a cheap confusion strategy that
// stays syntactically well-formed.
func Replayer(rounds int) simnet.PlayerFunc {
	return func(nd *simnet.Node) (interface{}, error) {
		var last []simnet.Message
		for r := 0; r < rounds; r++ {
			for _, m := range last {
				nd.Send(m.From, m.Payload)
			}
			msgs, err := nd.EndRound()
			if err != nil {
				return nil, err
			}
			last = msgs
		}
		return nil, nil
	}
}
