package vss

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/coin"
	"repro/internal/gf2k"
	"repro/internal/metrics"
	"repro/internal/poly"
	"repro/internal/simnet"
)

// harness bundles a network, per-player coin batches and a config.
type harness struct {
	cfg     Config
	n, t    int
	f       gf2k.Field
	nw      *simnet.Network
	batches []*coin.Batch
}

func newHarness(t *testing.T, n, tf, k, nCoins int, seed int64, ctr *metrics.Counters) *harness {
	t.Helper()
	f := gf2k.MustNew(k)
	rng := rand.New(rand.NewSource(seed))
	batches, _, err := coin.DealTrusted(f, n, tf, nCoins, rng)
	if err != nil {
		t.Fatal(err)
	}
	var opts []simnet.Option
	if ctr != nil {
		opts = append(opts, simnet.WithCounters(ctr))
		f = f.WithCounters(ctr)
	}
	return &harness{
		cfg:     Config{Field: f, N: n, T: tf, Counters: ctr},
		n:       n,
		t:       tf,
		f:       f,
		nw:      simnet.New(n, opts...),
		batches: batches,
	}
}

// player returns a PlayerFunc running Deal+Verify with the given secrets
// (only used at the dealer).
func (h *harness) player(dealer int, secrets []gf2k.Element, seed int64) simnet.PlayerFunc {
	return func(nd *simnet.Node) (interface{}, error) {
		cfg := h.cfg
		cfg.Coins = h.batches[nd.Index()]
		var rnd *rand.Rand
		var mySecrets []gf2k.Element
		if nd.Index() == dealer {
			rnd = rand.New(rand.NewSource(seed))
			mySecrets = secrets
		}
		inst, err := Deal(nd, cfg, dealer, mySecrets, rnd)
		if err != nil {
			return nil, err
		}
		ok, err := inst.Verify(nd)
		if err != nil {
			return nil, err
		}
		return ok, nil
	}
}

func TestHonestDealerAccepted(t *testing.T) {
	for _, tc := range []struct{ n, t, m int }{
		{4, 1, 1}, {7, 2, 1}, {7, 2, 8}, {10, 3, 32},
	} {
		h := newHarness(t, tc.n, tc.t, 32, 2, int64(tc.n*100+tc.m), nil)
		rng := rand.New(rand.NewSource(9))
		secrets := make([]gf2k.Element, tc.m)
		for j := range secrets {
			secrets[j], _ = h.f.Rand(rng)
		}
		fns := make([]simnet.PlayerFunc, tc.n)
		for i := range fns {
			fns[i] = h.player(0, secrets, 55)
		}
		for i, r := range simnet.Run(h.nw, fns) {
			if r.Err != nil {
				t.Fatalf("n=%d M=%d player %d: %v", tc.n, tc.m, i, r.Err)
			}
			if r.Value != true {
				t.Fatalf("n=%d M=%d player %d rejected an honest dealer", tc.n, tc.m, i)
			}
		}
	}
}

// cheatingDealer deals shares of a polynomial of degree t+1 (invalid) and
// then follows the protocol honestly.
func cheatingDealer(h *harness, m int, seed int64) simnet.PlayerFunc {
	return func(nd *simnet.Node) (interface{}, error) {
		cfg := h.cfg
		cfg.Coins = h.batches[nd.Index()]
		rnd := rand.New(rand.NewSource(seed))
		f := cfg.Field

		polys := make([]poly.Poly, m+1)
		for j := 0; j <= m; j++ {
			p, err := poly.Random(f, cfg.T+1, gf2k.Element(rnd.Uint64())&((1<<f.K())-1), rnd)
			if err != nil {
				return nil, err
			}
			// Force genuinely bad degree for the secret polynomials.
			if j < m && p[cfg.T+1] == 0 {
				p[cfg.T+1] = 1
			}
			polys[j] = p
		}
		var myShares []gf2k.Element
		var myMask gf2k.Element
		for i := 0; i < cfg.N; i++ {
			id, err := f.ElementFromID(i + 1)
			if err != nil {
				return nil, err
			}
			buf := make([]byte, 0, (m+1)*f.ByteLen())
			shares := make([]gf2k.Element, 0, m+1)
			for _, p := range polys {
				v := poly.Eval(f, p, id)
				shares = append(shares, v)
				buf = f.AppendElement(buf, v)
			}
			if i == nd.Index() {
				myShares = shares[:m]
				myMask = shares[m]
				continue
			}
			nd.Send(i, buf)
		}
		if _, err := nd.EndRound(); err != nil {
			return nil, err
		}
		inst := NewInstance(cfg, nd.Index(), myShares, myMask)
		return inst.Verify(nd)
	}
}

func TestCheatingDealerRejected(t *testing.T) {
	// With k=32 the acceptance probability is M/2^32; over a handful of
	// trials rejection is essentially certain.
	for trial := 0; trial < 5; trial++ {
		for _, m := range []int{1, 8} {
			h := newHarness(t, 7, 2, 32, 2, int64(trial*10+m), nil)
			fns := make([]simnet.PlayerFunc, h.n)
			fns[0] = cheatingDealer(h, m, int64(trial)*31+7)
			for i := 1; i < h.n; i++ {
				fns[i] = h.player(0, nil, 0)
			}
			for i, r := range simnet.Run(h.nw, fns) {
				if r.Err != nil {
					t.Fatalf("player %d: %v", i, r.Err)
				}
				if r.Value != false {
					t.Fatalf("trial %d M=%d: player %d accepted a degree-%d sharing", trial, m, i, h.t+1)
				}
			}
		}
	}
}

func TestVerdictUnanimity(t *testing.T) {
	// Whatever the dealer does, all honest players return the same verdict.
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 10; trial++ {
		h := newHarness(t, 7, 2, 8, 2, int64(trial), nil) // tiny field: accepts sometimes
		fns := make([]simnet.PlayerFunc, h.n)
		fns[0] = cheatingDealer(h, 4, rng.Int63())
		for i := 1; i < h.n; i++ {
			fns[i] = h.player(0, nil, 0)
		}
		results := simnet.Run(h.nw, fns)
		verdict := results[1].Value.(bool)
		for i := 2; i < h.n; i++ {
			if results[i].Err != nil {
				t.Fatalf("player %d: %v", i, results[i].Err)
			}
			if results[i].Value.(bool) != verdict {
				t.Fatalf("trial %d: verdicts differ between honest players", trial)
			}
		}
	}
}

func TestFaultyPlayersCannotFrameHonestDealer(t *testing.T) {
	// t Byzantine players broadcast garbage δ; verification must still
	// accept the honest dealer's sharing.
	h := newHarness(t, 7, 2, 32, 2, 77, nil)
	secrets := []gf2k.Element{1, 2, 3}
	fns := make([]simnet.PlayerFunc, h.n)
	for i := range fns {
		fns[i] = h.player(0, secrets, 13)
	}
	for _, bad := range []int{2, 5} {
		bad := bad
		fns[bad] = func(nd *simnet.Node) (interface{}, error) {
			cfg := h.cfg
			cfg.Coins = h.batches[nd.Index()]
			if _, err := Deal(nd, cfg, 0, nil, nil); err != nil {
				return nil, err
			}
			// Participate in coin expose (must keep lockstep), then lie.
			if _, err := cfg.Coins.Expose(nd); err != nil {
				return nil, err
			}
			nd.Broadcast(cfg.Field.AppendElement(nil, gf2k.Element(0xbadbad)))
			if _, err := nd.EndRound(); err != nil {
				return nil, err
			}
			return false, nil
		}
	}
	for i, r := range simnet.Run(h.nw, fns) {
		if i == 2 || i == 5 {
			continue
		}
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		if r.Value != true {
			t.Fatalf("player %d rejected honest dealer framed by faulty players", i)
		}
	}
}

func TestSilentDealerRejected(t *testing.T) {
	h := newHarness(t, 7, 2, 32, 2, 99, nil)
	fns := make([]simnet.PlayerFunc, h.n)
	fns[3] = func(nd *simnet.Node) (interface{}, error) {
		cfg := h.cfg
		cfg.Coins = h.batches[nd.Index()]
		// Dealer deals nothing.
		if _, err := nd.EndRound(); err != nil {
			return nil, err
		}
		if _, err := cfg.Coins.Expose(nd); err != nil {
			return nil, err
		}
		if _, err := nd.EndRound(); err != nil {
			return nil, err
		}
		return false, nil
	}
	for i := range fns {
		if i == 3 {
			continue
		}
		fns[i] = h.player(3, nil, 0)
	}
	for i, r := range simnet.Run(h.nw, fns) {
		if i == 3 {
			continue
		}
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		if r.Value != false {
			t.Fatalf("player %d accepted a silent dealer", i)
		}
	}
}

func TestReconstruct(t *testing.T) {
	h := newHarness(t, 7, 2, 32, 2, 101, nil)
	secrets := []gf2k.Element{0xabcdef, 42, 7}
	fns := make([]simnet.PlayerFunc, h.n)
	for i := range fns {
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			cfg := h.cfg
			cfg.Coins = h.batches[nd.Index()]
			var rnd *rand.Rand
			var s []gf2k.Element
			if nd.Index() == 0 {
				rnd = rand.New(rand.NewSource(5))
				s = secrets
			}
			inst, err := Deal(nd, cfg, 0, s, rnd)
			if err != nil {
				return nil, err
			}
			if ok, err := inst.Verify(nd); err != nil || !ok {
				return nil, fmt.Errorf("verify: ok=%v err=%v", ok, err)
			}
			out := make([]gf2k.Element, len(secrets))
			for j := range secrets {
				v, err := inst.Reconstruct(nd, j)
				if err != nil {
					return nil, err
				}
				out[j] = v
			}
			return out, nil
		}
	}
	for i, r := range simnet.Run(h.nw, fns) {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		got := r.Value.([]gf2k.Element)
		for j, want := range secrets {
			if got[j] != want {
				t.Fatalf("player %d secret %d: %#x, want %#x", i, j, got[j], want)
			}
		}
	}
}

func TestSoundnessBoundSmallField(t *testing.T) {
	// Lemma 1 empirically: in GF(2^4) (p = 16) a cheating dealer passes
	// with probability ≤ M/p. Run many trials and check the acceptance
	// rate is in a generous band around the bound.
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	const trials = 400
	accepted := 0
	for trial := 0; trial < trials; trial++ {
		h := newHarness(t, 4, 1, 4, 1, int64(trial*7+1), nil)
		fns := make([]simnet.PlayerFunc, h.n)
		fns[0] = cheatingDealer(h, 1, int64(trial)*3+11)
		for i := 1; i < h.n; i++ {
			fns[i] = h.player(0, nil, 0)
		}
		results := simnet.Run(h.nw, fns)
		for i := 1; i < h.n; i++ {
			if results[i].Err != nil {
				t.Fatalf("trial %d player %d: %v", trial, i, results[i].Err)
			}
		}
		if results[1].Value == true {
			accepted++
		}
	}
	// Bound is 1/16 = 6.25%; allow up to 3x for Monte-Carlo noise.
	if rate := float64(accepted) / trials; rate > 3.0/16 {
		t.Errorf("cheating dealer accepted %.1f%% of the time; bound is 6.25%%", rate*100)
	}
}

func TestCommunicationCostsMatchLemma(t *testing.T) {
	// Lemma 2/4: dealing is n−1 messages of (M+1)·k bits; verification is n
	// broadcasts of k bits; the whole ceremony (excluding the coin expose)
	// takes 2 broadcast/deal rounds + 1 expose round; 2 interpolations per
	// ceremony appear (1 expose + 1 verify) since the fault-free fast path
	// interpolates once each.
	var ctr metrics.Counters
	n, tf, m, k := 7, 2, 16, 32
	h := newHarness(t, n, tf, k, 1, 5, &ctr)
	secrets := make([]gf2k.Element, m)
	for j := range secrets {
		secrets[j] = gf2k.Element(j + 1)
	}
	fns := make([]simnet.PlayerFunc, n)
	for i := range fns {
		fns[i] = h.player(0, secrets, 21)
	}
	before := ctr.Snapshot()
	for i, r := range simnet.Run(h.nw, fns) {
		if r.Err != nil || r.Value != true {
			t.Fatalf("player %d: %+v", i, r)
		}
	}
	d := metrics.Diff(before, ctr.Snapshot())

	elem := int64((k + 7) / 8)
	wantDealBytes := int64(n-1) * int64(m+1) * elem
	wantExposeBytes := int64(3*tf) * elem // |S|−1... each S member SendAll to n−1
	_ = wantExposeBytes
	wantBroadcastMsgs := int64(n * n) // n broadcasts delivered to n players each
	if d.Rounds != 3 {
		t.Errorf("rounds = %d, want 3 (deal, expose, verify)", d.Rounds)
	}
	if d.Broadcasts != int64(n) {
		t.Errorf("broadcasts = %d, want %d", d.Broadcasts, n)
	}
	// Total unicast messages: deal (n−1) + expose (|S| members × (n−1)).
	wantUnicast := int64(n-1) + int64(3*tf+1)*int64(n-1)
	if got := d.Messages - wantBroadcastMsgs; got != wantUnicast {
		t.Errorf("unicast messages = %d, want %d", got, wantUnicast)
	}
	// Bytes: deal + expose shares + broadcast δ (n copies each of k bits
	// plus the one-byte δ/complaint flag).
	wantBytes := wantDealBytes + int64(3*tf+1)*int64(n-1)*elem + int64(n*n)*(elem+1)
	if d.Bytes != wantBytes {
		t.Errorf("bytes = %d, want %d", d.Bytes, wantBytes)
	}
	// Lemma 4: verification costs one interpolation per player regardless
	// of M. (The harness's coin batches carry no counters, so the expose
	// interpolation is not included here.)
	if d.Interpolations != int64(n) {
		t.Errorf("interpolations = %d, want %d (one per player)", d.Interpolations, n)
	}
}

func TestConfigValidation(t *testing.T) {
	f := gf2k.MustNew(16)
	if err := (Config{Field: f, N: 6, T: 2}).Validate(); err == nil {
		t.Error("n=6,t=2 accepted (needs 7)")
	}
	if err := (Config{Field: f, N: 4, T: -1}).Validate(); err == nil {
		t.Error("negative t accepted")
	}
	if err := (Config{Field: f, N: 7, T: 2}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestMaskKeepsSecretsHidden(t *testing.T) {
	// The broadcast δ values must not determine the secrets: run two
	// ceremonies with different secrets but identical randomness for the
	// mask... instead, statistically: δ of a fixed player over repeated
	// ceremonies with the SAME secret should be close to uniform (it is
	// γ + combination, with γ fresh every time).
	h0 := newHarness(t, 4, 1, 16, 1, 1, nil)
	f := h0.f
	seen := make(map[gf2k.Element]bool)
	const reps = 120
	for rep := 0; rep < reps; rep++ {
		h := newHarness(t, 4, 1, 16, 1, int64(rep+1000), nil)
		var captured gf2k.Element
		fns := make([]simnet.PlayerFunc, h.n)
		for i := range fns {
			i := i
			fns[i] = func(nd *simnet.Node) (interface{}, error) {
				cfg := h.cfg
				cfg.Coins = h.batches[nd.Index()]
				var rnd *rand.Rand
				var s []gf2k.Element
				if nd.Index() == 0 {
					rnd = rand.New(rand.NewSource(int64(rep + 5000)))
					s = []gf2k.Element{0x42} // fixed secret
				}
				inst, err := Deal(nd, cfg, 0, s, rnd)
				if err != nil {
					return nil, err
				}
				r, err := cfg.Coins.Expose(nd)
				if err != nil {
					return nil, err
				}
				if i == 1 {
					captured = inst.combination(r)
				}
				ok, err := inst.verifyWithChallenge(nd, r)
				if err != nil || !ok {
					return nil, fmt.Errorf("verify failed: %v %v", ok, err)
				}
				return nil, nil
			}
		}
		for i, r := range simnet.Run(h.nw, fns) {
			if r.Err != nil {
				t.Fatalf("rep %d player %d: %v", rep, i, r.Err)
			}
		}
		seen[captured] = true
	}
	_ = f
	if len(seen) < reps*3/4 {
		t.Errorf("δ took only %d/%d distinct values for a fixed secret; mask not hiding", len(seen), reps)
	}
}

// partialDealer deals proper shares to all but `skip` players (who get
// nothing) and otherwise runs the protocol honestly.
func partialDealer(h *harness, skip map[int]bool, seed int64) simnet.PlayerFunc {
	return func(nd *simnet.Node) (interface{}, error) {
		cfg := h.cfg
		cfg.Coins = h.batches[nd.Index()]
		rnd := rand.New(rand.NewSource(seed))
		f := cfg.Field
		p, err := poly.Random(f, cfg.T, 0x77, rnd)
		if err != nil {
			return nil, err
		}
		mask, err := poly.Random(f, cfg.T, gf2k.Element(rnd.Uint32()), rnd)
		if err != nil {
			return nil, err
		}
		var myShares []gf2k.Element
		var myMask gf2k.Element
		for i := 0; i < cfg.N; i++ {
			id, err := f.ElementFromID(i + 1)
			if err != nil {
				return nil, err
			}
			sv, mv := poly.Eval(f, p, id), poly.Eval(f, mask, id)
			if i == nd.Index() {
				myShares, myMask = []gf2k.Element{sv}, mv
				continue
			}
			if skip[i] {
				continue
			}
			buf := f.AppendElement(nil, sv)
			buf = f.AppendElement(buf, mv)
			nd.Send(i, buf)
		}
		if _, err := nd.EndRound(); err != nil {
			return nil, err
		}
		inst := NewInstance(cfg, nd.Index(), myShares, myMask)
		return inst.Verify(nd)
	}
}

func TestComplaintBoundary(t *testing.T) {
	// A dealer that skips exactly t players is accepted (their complaints
	// fit the budget and the remaining shares are consistent); skipping
	// t+1 players must be rejected by everyone.
	for _, tc := range []struct {
		skip int
		want bool
	}{
		{2, true},  // = t
		{3, false}, // = t+1
	} {
		h := newHarness(t, 7, 2, 32, 2, int64(tc.skip)*7+1, nil)
		skip := map[int]bool{}
		for i := 1; i <= tc.skip; i++ {
			skip[i] = true
		}
		fns := make([]simnet.PlayerFunc, h.n)
		fns[0] = partialDealer(h, skip, 17)
		for i := 1; i < h.n; i++ {
			fns[i] = h.player(0, nil, 0)
		}
		for i, r := range simnet.Run(h.nw, fns) {
			if r.Err != nil {
				t.Fatalf("skip=%d player %d: %v", tc.skip, i, r.Err)
			}
			if r.Value != tc.want {
				t.Fatalf("skip=%d player %d: verdict %v, want %v", tc.skip, i, r.Value, tc.want)
			}
		}
	}
}
