package gf2big

import (
	"math/rand"
	"testing"

	"repro/internal/gf2k"
)

var testDegrees = []int{2, 8, 63, 64, 65, 100, 127, 128, 233, 256}

func randElem(f *Field, rng *rand.Rand) Element {
	e := make(Element, f.words)
	for i := range e {
		e[i] = rng.Uint64()
	}
	f.maskTop(e)
	return e
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := New(-3); err == nil {
		t.Error("negative k accepted")
	}
}

func TestModulusVerified(t *testing.T) {
	for _, k := range testDegrees {
		f, err := New(k)
		if err != nil {
			t.Fatalf("New(%d): %v", k, err)
		}
		if !f.isIrreducible(f.taps) {
			t.Errorf("k=%d: taps %v not irreducible", k, f.taps)
		}
	}
}

func TestKnownTapsAllIrreducible(t *testing.T) {
	if testing.Short() {
		t.Skip("large-degree Rabin tests")
	}
	for k := range knownTaps {
		if k > 1024 {
			continue // keep test time modest; bench setup exercises these
		}
		f := &Field{k: k, words: (k + 63) / 64}
		if !f.isIrreducible(knownTaps[k]) {
			t.Errorf("knownTaps[%d] = %v is NOT irreducible; construction will fall back to search", k, knownTaps[k])
		}
	}
}

func TestFieldAxioms(t *testing.T) {
	for _, k := range testDegrees {
		f, err := New(k)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(k)))
		for trial := 0; trial < 30; trial++ {
			a, b, c := randElem(f, rng), randElem(f, rng), randElem(f, rng)
			if !f.Equal(f.Mul(a, b), f.Mul(b, a)) {
				t.Fatalf("k=%d: commutativity fails", k)
			}
			if !f.Equal(f.Mul(f.Mul(a, b), c), f.Mul(a, f.Mul(b, c))) {
				t.Fatalf("k=%d: associativity fails", k)
			}
			if !f.Equal(f.Mul(a, f.Add(b, c)), f.Add(f.Mul(a, b), f.Mul(a, c))) {
				t.Fatalf("k=%d: distributivity fails", k)
			}
			if !f.Equal(f.Mul(a, f.One()), a) {
				t.Fatalf("k=%d: identity fails", k)
			}
			if !f.Equal(f.Sqr(a), f.Mul(a, a)) {
				t.Fatalf("k=%d: Sqr != Mul(a,a)", k)
			}
		}
	}
}

func TestInv(t *testing.T) {
	for _, k := range []int{8, 64, 100, 128} {
		f, err := New(k)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(k) * 3))
		for trial := 0; trial < 10; trial++ {
			a := randElem(f, rng)
			if f.IsZero(a) {
				continue
			}
			if !f.Equal(f.Mul(a, f.Inv(a)), f.One()) {
				t.Fatalf("k=%d: a·Inv(a) != 1", k)
			}
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	f, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	f.Inv(f.Zero())
}

func TestAgreesWithGf2kWhenSameModulus(t *testing.T) {
	// For k ≤ 64, gf2k finds the lexicographically smallest irreducible
	// polynomial. When gf2big lands on the same modulus, multiplication
	// must agree bit for bit.
	for _, k := range []int{17, 23, 33, 47} {
		small := gf2k.MustNew(k)
		big, err := New(k)
		if err != nil {
			t.Fatal(err)
		}
		var bigTapsMask uint64
		for _, tap := range big.taps {
			bigTapsMask |= uint64(1) << tap
		}
		if bigTapsMask != small.Modulus() {
			continue // different moduli: skip (isomorphic but not identical)
		}
		rng := rand.New(rand.NewSource(int64(k)))
		for trial := 0; trial < 50; trial++ {
			a := gf2k.Element(rng.Uint64()) & ((1 << k) - 1)
			b := gf2k.Element(rng.Uint64()) & ((1 << k) - 1)
			want := small.Mul(a, b)
			got := big.Mul(Element{uint64(a)}, Element{uint64(b)})
			if got[0] != uint64(want) {
				t.Fatalf("k=%d: gf2big %#x != gf2k %#x", k, got[0], want)
			}
		}
	}
}

func TestRand(t *testing.T) {
	f, err := New(100)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		e, err := f.Rand(rng)
		if err != nil {
			t.Fatal(err)
		}
		if deg(e) >= 100 {
			t.Fatalf("random element degree %d ≥ k", deg(e))
		}
	}
}

func TestFermat(t *testing.T) {
	// a^(2^k) = a via repeated squaring.
	f, err := New(33)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		a := randElem(f, rng)
		u := append(Element(nil), a...)
		for i := 0; i < 33; i++ {
			u = f.Sqr(u)
		}
		if !f.Equal(u, a) {
			t.Fatalf("a^(2^33) != a")
		}
	}
}

func TestDeg(t *testing.T) {
	if deg([]uint64{0, 0}) != -1 {
		t.Error("deg(0) != -1")
	}
	if deg([]uint64{1}) != 0 {
		t.Error("deg(1) != 0")
	}
	if deg([]uint64{0, 1 << 5}) != 69 {
		t.Error("deg(x^69) != 69")
	}
}

func BenchmarkMulNaiveBig(b *testing.B) {
	for _, k := range []int{64, 256, 1024, 4096} {
		f, err := New(k)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		x, y := randElem(f, rng), randElem(f, rng)
		b.Run(kName(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				x = f.Mul(x, y)
			}
		})
	}
}

func kName(k int) string {
	d := []byte{byte('0' + k/1000%10), byte('0' + k/100%10), byte('0' + k/10%10), byte('0' + k%10)}
	return "k=" + string(d)
}
