// Command multicell demonstrates the horizontal-scale serving layer: M
// independent beacon cells behind one router, each cell a full D-PRBG
// cluster with its own domain-separated dealer seed. Tenants are
// consistent-hashed onto cells — watch two tenants land on (usually)
// different cells and each observe one contiguous per-cell coin stream —
// while anonymous draws round-robin across the whole cluster. Finally one
// cell is retired mid-run and its tenant's draws shed to a survivor
// without a single failed request.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"sync"
	"time"

	"repro/internal/beacon"
	"repro/internal/core"
	"repro/internal/gf2k"
	"repro/internal/multicell"
)

func main() {
	cells := flag.Int("cells", 3, "number of independent beacon cells")
	flag.Parse()
	if err := run(*cells); err != nil {
		log.Fatal(err)
	}
}

// demoRand keys every (cell, player) pair to its own deterministic stream
// so the demo is reproducible run to run. Real deployments leave
// Config.CellRand nil (crypto/rand).
func demoRand(seed int64) func(cell, player int) io.Reader {
	var mu sync.Mutex
	calls := make(map[[2]int]int64)
	return func(cell, player int) io.Reader {
		mu.Lock()
		calls[[2]int{cell, player}]++
		k := calls[[2]int{cell, player}]
		mu.Unlock()
		return rand.New(rand.NewSource(seed + int64(cell)*7_777_777 + int64(player)*1009 + k*1_000_003))
	}
}

func run(cells int) error {
	field, err := gf2k.New(16)
	if err != nil {
		return err
	}
	cl, err := multicell.New(multicell.Config{
		Cells: cells,
		Cell: beacon.Config{
			Core: core.Config{Field: field, N: 7, T: 1, BatchSize: 96, Threshold: 8, HighWater: 64},
		},
		CellRand: demoRand(1),
	})
	if err != nil {
		return err
	}
	ctx := context.Background()
	fmt.Printf("cluster: %d cells, each 7 players tolerating 1 Byzantine fault, GF(2^16)\n\n", cells)

	// Two tenants: each is pinned to its consistent-hash home cell and sees
	// that cell's stream advance contiguously.
	for _, tenant := range []string{"alice", "bob"} {
		b, err := cl.DrawN(ctx, tenant, 4)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s → cell %d, coins [%d..%d]:", tenant, b.Cell, b.Seq, b.Seq+3)
		for _, v := range b.Vals {
			fmt.Printf(" 0x%04x", uint64(v))
		}
		fmt.Println()
	}

	// Anonymous draws round-robin across every healthy cell.
	fmt.Printf("\nanonymous draws round-robin:")
	for i := 0; i < cells*2; i++ {
		coin, err := cl.Draw(ctx, "")
		if err != nil {
			return err
		}
		fmt.Printf(" cell%d", coin.Cell)
	}
	fmt.Println()

	// Retire alice's home cell; her next draw sheds to a survivor — same
	// API, zero failures, different serving cell.
	home, err := cl.Draw(ctx, "alice")
	if err != nil {
		return err
	}
	closeCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := cl.CloseCell(closeCtx, home.Cell); err != nil {
		return err
	}
	shed, err := cl.Draw(ctx, "alice")
	if err != nil {
		return err
	}
	fmt.Printf("\nretired cell %d; alice's draws now shed to cell %d (coin 0x%04x, seq %d)\n",
		home.Cell, shed.Cell, uint64(shed.Val), shed.Seq)

	for _, st := range cl.CellStats() {
		fmt.Printf("cell %d: served %d coins, %d refills, down=%v\n", st.Cell, st.Coins, st.Refills, st.Down)
	}
	return cl.Close(closeCtx)
}
