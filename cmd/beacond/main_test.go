package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/prom"
)

// syncBuf is a goroutine-safe writer the daemon under test logs into.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

type daemon struct {
	url    string
	out    *syncBuf
	done   chan error
	cancel context.CancelFunc
}

var listenRe = regexp.MustCompile(`listening on (http://\S+)`)

// startDaemon runs the daemon in-process on an ephemeral port and waits
// until it announces its listen address.
func startDaemon(t *testing.T, extra ...string) *daemon {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	d := &daemon{out: &syncBuf{}, done: make(chan error, 1), cancel: cancel}
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	go func() { d.done <- run(ctx, args, d.out, d.out) }()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if m := listenRe.FindStringSubmatch(d.out.String()); m != nil {
			d.url = m[1]
			break
		}
		select {
		case err := <-d.done:
			t.Fatalf("daemon exited before listening: %v\noutput:\n%s", err, d.out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; output:\n%s", d.out.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Cleanup(func() { d.cancel(); <-d.done })
	return d
}

// stop sends the shutdown signal (the SIGTERM code path) and returns the
// accumulated output after a clean exit.
func (d *daemon) stop(t *testing.T) string {
	t.Helper()
	d.cancel()
	select {
	case err := <-d.done:
		if err != nil {
			t.Fatalf("daemon exit: %v\noutput:\n%s", err, d.out.String())
		}
		d.done <- nil // keep the cleanup drain happy
	case <-time.After(60 * time.Second):
		t.Fatalf("daemon did not shut down; output:\n%s", d.out.String())
	}
	return d.out.String()
}

// getJSON fetches path and decodes the JSON body (on any status).
func getJSON(t *testing.T, base, path string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
	}
	return resp.StatusCode, body
}

// beaconVars reads the beacon Stats snapshot out of /debug/vars.
func beaconVars(t *testing.T, base string) map[string]any {
	t.Helper()
	status, body := getJSON(t, base, "/debug/vars")
	if status != http.StatusOK {
		t.Fatalf("/debug/vars: status %d", status)
	}
	st, ok := body["beacon"].(map[string]any)
	if !ok {
		t.Fatalf("/debug/vars has no beacon stats: %v", body)
	}
	return st
}

// getRaw fetches path and returns status, Content-Type, and the raw body.
func getRaw(t *testing.T, base, path string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), body
}

// TestObservabilityEndpoints covers the single-process mode's /metrics,
// /debug/trace and unified /debug/vars surfaces: the exposition parses and
// carries the key series, the trace dump is valid obs JSONL with refill
// spans, and the expvar blob follows the unified schema.
func TestObservabilityEndpoints(t *testing.T) {
	d := startDaemon(t, "-n", "7", "-t", "1", "-k", "8",
		"-batch", "24", "-threshold", "6", "-highwater", "16", "-insecure-rand")
	const draws = 12 // 24-coin seed − 12 < the 16 high-water mark: forces a pipelined refill
	for i := 0; i < draws; i++ {
		if status, _ := getJSON(t, d.url, "/v1/coin"); status != http.StatusOK {
			t.Fatalf("draw %d: status %d", i, status)
		}
	}

	status, ctype, body := getRaw(t, d.url, "/metrics")
	if status != http.StatusOK || !strings.Contains(ctype, "version=0.0.4") {
		t.Fatalf("/metrics: status %d content-type %q", status, ctype)
	}
	samples, err := prom.ParseText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics does not parse: %v\n%s", err, body)
	}
	if v, ok := prom.Value(samples, "beacon_draws_total"); !ok || v != draws {
		t.Errorf("beacon_draws_total = %v, %v; want %d", v, ok, draws)
	}
	for _, name := range []string{"beacon_draw_latency_seconds_count", "beacon_store_remaining", "beacon_queue_depth"} {
		if _, ok := prom.Value(samples, name); !ok {
			t.Errorf("/metrics missing %s:\n%s", name, body)
		}
	}

	// The pipelined refill runs asynchronously; wait for its spans to land
	// in the flight recorder.
	deadline := time.Now().Add(10 * time.Second)
	var events []obs.Event
	for {
		_, ctype, body = getRaw(t, d.url, "/debug/trace")
		if !strings.Contains(ctype, "ndjson") {
			t.Fatalf("/debug/trace content-type %q", ctype)
		}
		if events, err = obs.ParseJSONL(bytes.NewReader(body)); err != nil {
			t.Fatalf("/debug/trace is not valid obs JSONL: %v\n%s", err, body)
		}
		if len(events) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(events) == 0 {
		t.Fatal("/debug/trace stayed empty after a pipelined refill")
	}
	if status, _, _ := getRaw(t, d.url, "/debug/trace?n=bogus"); status != http.StatusBadRequest {
		t.Errorf("/debug/trace?n=bogus: status %d, want 400", status)
	}
	_, _, tail := getRaw(t, d.url, "/debug/trace?n=3")
	tailEvents, err := obs.ParseJSONL(bytes.NewReader(tail))
	if err != nil || len(tailEvents) > 3 {
		t.Errorf("/debug/trace?n=3 returned %d events, err %v", len(tailEvents), err)
	}

	vars := beaconVars(t, d.url)
	if vars["Mode"] != "service" {
		t.Errorf("unified expvar Mode = %v, want \"service\"", vars["Mode"])
	}
	if vars["Draws"].(float64) != draws {
		t.Errorf("unified expvar Draws = %v, want %d", vars["Draws"], draws)
	}
	d.stop(t)
}

func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-k", "99"},                       // unsupported field degree
		{"-n", "3", "-t", "1"},             // violates n ≥ 6t+1
		{"-highwater", "2"},                // below the default threshold
		{"-batch", "4", "-threshold", "6"}, // refills could not make progress
		{"stray-positional"},
	}
	for _, args := range cases {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			if err := run(context.Background(), args, &syncBuf{}, &syncBuf{}); err == nil {
				t.Fatalf("args %v accepted", args)
			}
		})
	}
}

// TestModeFlagValidation pins the mode-selection rules: -all / -deal /
// -player are mutually exclusive, the multi-process modes need their
// supporting flags, and every rejection prints usage naming both the
// single-process and per-player modes.
func TestModeFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // required substring of the error; "" = must be accepted
	}{
		{"player without config", []string{"-player", "0", "-data", "d"}, "-player requires -config"},
		{"player without data", []string{"-player", "0", "-config", "peers.yaml"}, "-player requires -data"},
		{"deal without config", []string{"-deal", "-data", "d"}, "-deal requires -config"},
		{"deal without data", []string{"-deal", "-config", "peers.yaml"}, "-deal requires -data"},
		{"player plus all", []string{"-player", "0", "-config", "p.yaml", "-data", "d", "-all"}, "mutually exclusive"},
		{"deal plus player", []string{"-deal", "-player", "0", "-config", "p.yaml", "-data", "d"}, "mutually exclusive"},
		{"config without mode", []string{"-config", "peers.yaml"}, "only meaningful"},
		{"join plus player", []string{"-reshare-join", "7", "-player", "0", "-config", "p.yaml", "-reshare", "n.yaml", "-data", "d"}, "mutually exclusive"},
		{"join without rosters", []string{"-reshare-join", "7", "-data", "d"}, "-reshare-join requires both"},
		{"join without data", []string{"-reshare-join", "7", "-config", "p.yaml", "-reshare", "n.yaml"}, "-reshare-join requires -data"},
		{"stale without reshare", []string{"-player", "0", "-config", "p.yaml", "-data", "d", "-reshare-stale"}, "-reshare-stale requires -reshare"},
		{"stale joiner", []string{"-reshare-join", "7", "-config", "p.yaml", "-reshare", "n.yaml", "-data", "d", "-reshare-stale"}, "no store to be stale"},
		{"reshare with deal", []string{"-deal", "-config", "p.yaml", "-data", "d", "-reshare", "n.yaml"}, "only meaningful"},
		{"reshare single process", []string{"-reshare", "n.yaml"}, "only meaningful"},
		{"default single process", []string{"-n", "7", "-t", "1"}, ""},
		{"explicit all", []string{"-all"}, ""},
		{"player mode", []string{"-player", "2", "-config", "p.yaml", "-data", "d"}, ""},
		{"armed player", []string{"-player", "2", "-config", "p.yaml", "-data", "d", "-reshare", "n.yaml"}, ""},
		{"stale player", []string{"-player", "2", "-config", "p.yaml", "-data", "d", "-reshare", "n.yaml", "-reshare-stale"}, ""},
		{"joiner mode", []string{"-reshare-join", "7", "-config", "p.yaml", "-reshare", "n.yaml", "-data", "d"}, ""},
		{"deal mode", []string{"-deal", "-config", "p.yaml", "-data", "d"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := parseFlags(tc.args, &syncBuf{})
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("args %v rejected: %v", tc.args, err)
				}
				_ = c
				return
			}
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("args %v: error %q does not mention %q", tc.args, err, tc.wantErr)
			}
			// Every mode error must point the operator at both modes.
			for _, mode := range []string{"beacond -all", "beacond -player"} {
				if !strings.Contains(err.Error(), mode) {
					t.Fatalf("args %v: error %q does not name mode %q", tc.args, err, mode)
				}
			}
		})
	}
}

func TestEndpoints(t *testing.T) {
	d := startDaemon(t, "-n", "7", "-t", "1", "-k", "8",
		"-batch", "24", "-threshold", "6", "-highwater", "16", "-insecure-rand")

	status, body := getJSON(t, d.url, "/v1/coin")
	if status != http.StatusOK {
		t.Fatalf("/v1/coin: status %d", status)
	}
	coin, _ := body["coin"].(string)
	if !strings.HasPrefix(coin, "0x") || len(coin) != 4 { // 0x + 2 hex digits for k=8
		t.Fatalf("/v1/coin returned %q", coin)
	}

	status, body = getJSON(t, d.url, "/v1/bits?n=16")
	if status != http.StatusOK {
		t.Fatalf("/v1/bits: status %d", status)
	}
	if bits, _ := body["bits"].(string); len(bits) != 4 { // 16 bits = 2 bytes = 4 hex chars
		t.Fatalf("/v1/bits?n=16 returned %q", body["bits"])
	}
	if status, _ := getJSON(t, d.url, "/v1/bits?n=0"); status != http.StatusBadRequest {
		t.Fatalf("/v1/bits?n=0: status %d, want 400", status)
	}
	if status, _ := getJSON(t, d.url, "/v1/bits"); status != http.StatusBadRequest {
		t.Fatalf("/v1/bits without n: status %d, want 400", status)
	}

	status, body = getJSON(t, d.url, "/v1/modulo?m=5")
	if status != http.StatusOK {
		t.Fatalf("/v1/modulo: status %d", status)
	}
	if v, _ := body["value"].(float64); v < 1 || v > 5 {
		t.Fatalf("/v1/modulo?m=5 returned %v", body["value"])
	}
	if status, _ := getJSON(t, d.url, "/v1/modulo?m=-2"); status != http.StatusBadRequest {
		t.Fatalf("/v1/modulo?m=-2: status %d, want 400", status)
	}

	status, body = getJSON(t, d.url, "/v1/healthz")
	if status != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("/v1/healthz: status %d body %v", status, body)
	}
	if vars := beaconVars(t, d.url); vars["CoinsDelivered"].(float64) < 3 {
		t.Fatalf("expvar stats did not count the draws: %v", vars)
	}
	out := d.stop(t)
	if !strings.Contains(out, "served") {
		t.Fatalf("shutdown summary missing; output:\n%s", out)
	}
}

// TestSoakPipelineAndResume is the subsystem's acceptance test: concurrent
// paced clients drain more than three full batches through the HTTP API
// with every refill pipelined — zero draws blocked on a Coin-Gen round —
// then SIGTERM persists the stores and a restarted daemon resumes from
// disk without a trusted-dealer re-seed.
func TestSoakPipelineAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	dir := t.TempDir()
	args := []string{"-n", "7", "-t", "1", "-k", "8",
		"-batch", "96", "-threshold", "8", "-highwater", "72",
		"-queue", "1024", "-data", dir, "-insecure-rand"}
	d := startDaemon(t, args...)

	// 4 clients, each pacing ~100 draws/s: the 64-coin high-water headroom
	// buys each pipelined mint ~160 ms of wall clock, far beyond a
	// Coin-Gen round even under the race detector.
	const clients, perClient = 4, 80
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Get(d.url + "/v1/coin")
				if err != nil {
					errCh <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("draw %d: status %d", i, resp.StatusCode)
					return
				}
				time.Sleep(10 * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("soak client: %v", err)
	}

	vars := beaconVars(t, d.url)
	if got := vars["CoinsDelivered"].(float64); got != clients*perClient {
		t.Fatalf("CoinsDelivered=%v, want %d", got, clients*perClient)
	}
	if got := vars["PipelinedRefills"].(float64); got < 3 {
		t.Fatalf("PipelinedRefills=%v after draining %d coins, want ≥ 3", got, clients*perClient)
	}
	if got := vars["BlockedDraws"].(float64); got != 0 {
		t.Fatalf("BlockedDraws=%v, want 0 — a draw waited on a Coin-Gen round", got)
	}
	if got := vars["BlockingRefills"].(float64); got != 0 {
		t.Fatalf("BlockingRefills=%v, want 0", got)
	}

	out := d.stop(t)
	if !strings.Contains(out, "persisted 7 player stores") {
		t.Fatalf("shutdown did not persist; output:\n%s", out)
	}
	for i := 0; i < 7; i++ {
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("player-%03d.store", i))); err != nil {
			t.Fatalf("missing persisted store: %v", err)
		}
	}

	// Second session: must resume from disk, not from the dealer.
	d2 := startDaemon(t, args...)
	if !strings.Contains(d2.out.String(), "resumed 7 players") {
		t.Fatalf("restart did not resume from disk; output:\n%s", d2.out.String())
	}
	status, body := getJSON(t, d2.url, "/v1/healthz")
	if status != http.StatusOK || body["resumed"] != true {
		t.Fatalf("resumed healthz: status %d body %v", status, body)
	}
	for i := 0; i < 30; i++ { // drains into another refill, dealer-free
		if status, _ := getJSON(t, d2.url, "/v1/coin"); status != http.StatusOK {
			t.Fatalf("post-resume draw %d: status %d", i, status)
		}
	}
	if out := d2.stop(t); !strings.Contains(out, "persisted 7 player stores") {
		t.Fatalf("second shutdown did not persist; output:\n%s", out)
	}
}
