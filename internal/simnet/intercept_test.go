package simnet

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

// interceptRound runs one round on a 3-node network with the given
// interceptor: node 0 sends p0 to 1 and 2, node 1 broadcasts b1, node 2 is
// silent. It returns each node's delivered messages.
func interceptRound(t *testing.T, ic Interceptor) [][]Message {
	t.Helper()
	nw := New(3, WithInterceptor(ic))
	results := Run(nw, []PlayerFunc{
		func(nd *Node) (interface{}, error) {
			nd.Send(1, []byte{0xA1})
			nd.Send(2, []byte{0xA2})
			msgs, err := nd.EndRound()
			return msgs, err
		},
		func(nd *Node) (interface{}, error) {
			nd.Broadcast([]byte{0xB0})
			msgs, err := nd.EndRound()
			return msgs, err
		},
		func(nd *Node) (interface{}, error) {
			msgs, err := nd.EndRound()
			return msgs, err
		},
	})
	out := make([][]Message, 3)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("node %d: %v", i, r.Err)
		}
		out[i], _ = r.Value.([]Message)
	}
	return out
}

func payloads(msgs []Message) [][]byte {
	out := make([][]byte, len(msgs))
	for i, m := range msgs {
		out[i] = m.Payload
	}
	return out
}

func TestInterceptorPassThrough(t *testing.T) {
	var seen []Deliverable
	ic := InterceptorFunc(func(d Deliverable) []Deliverable {
		seen = append(seen, d)
		return d.Pass()
	})
	got := interceptRound(t, ic)
	// Delivery must match an interceptor-free network exactly.
	want := interceptRound(t, nil)
	for i := range want {
		if !reflect.DeepEqual(payloads(got[i]), payloads(want[i])) {
			t.Fatalf("node %d delivery changed under pass-through: %v vs %v",
				i, payloads(got[i]), payloads(want[i]))
		}
	}
	// The interceptor saw every copy (2 unicasts + 3 broadcast copies) in
	// deterministic (recipient, sender) order, all in round 0.
	var order []string
	for _, d := range seen {
		if d.Round != 0 {
			t.Fatalf("deliverable has round %d, want 0", d.Round)
		}
		order = append(order, fmt.Sprintf("%d<-%d", d.To, d.From))
	}
	wantOrder := []string{"0<-1", "1<-0", "1<-1", "2<-0", "2<-1"}
	if !reflect.DeepEqual(order, wantOrder) {
		t.Fatalf("interception order = %v, want %v", order, wantOrder)
	}
}

func TestInterceptorDropTamperDuplicateMisdeliver(t *testing.T) {
	ic := InterceptorFunc(func(d Deliverable) []Deliverable {
		switch {
		case d.Kind == Broadcast && d.To == 0:
			return nil // drop node 1's broadcast copy for node 0
		case d.From == 0 && d.To == 1:
			// Tamper: fresh slice, original payload untouched.
			return []Deliverable{{To: 1, Payload: []byte{0xEE}}}
		case d.From == 0 && d.To == 2:
			// Duplicate and misdeliver: node 0 also gets a copy, plus one
			// addressed off-network that must vanish.
			return []Deliverable{d, {To: 0, Payload: d.Payload}, {To: 99, Payload: d.Payload}}
		}
		return d.Pass()
	})
	got := interceptRound(t, ic)

	// Node 0: broadcast copy dropped, but received the misdelivered 0xA2
	// (From forced back to the true sender, 0).
	if len(got[0]) != 1 || got[0][0].From != 0 || !bytes.Equal(got[0][0].Payload, []byte{0xA2}) {
		t.Fatalf("node 0 delivery = %+v, want one 0xA2 from 0", got[0])
	}
	// Node 1: tampered unicast + intact broadcast.
	if want := [][]byte{{0xEE}, {0xB0}}; !reflect.DeepEqual(payloads(got[1]), want) {
		t.Fatalf("node 1 delivery = %v, want %v", payloads(got[1]), want)
	}
	if got[1][0].From != 0 || got[1][0].Kind != Unicast {
		t.Fatalf("tampered copy lost sender metadata: %+v", got[1][0])
	}
	// Node 2: untouched.
	if want := [][]byte{{0xA2}, {0xB0}}; !reflect.DeepEqual(payloads(got[2]), want) {
		t.Fatalf("node 2 delivery = %v, want %v", payloads(got[2]), want)
	}
}

// TestInterceptorCannotForgeSender pins the authenticated-channel rule: an
// interceptor rewriting From (or Kind) is overridden by the router.
func TestInterceptorCannotForgeSender(t *testing.T) {
	ic := InterceptorFunc(func(d Deliverable) []Deliverable {
		d.From = 2
		d.Kind = Broadcast
		return d.Pass()
	})
	got := interceptRound(t, ic)
	for i, msgs := range got {
		for _, m := range msgs {
			if m.From == 2 {
				t.Fatalf("node %d received a forged message from 2: %+v", i, m)
			}
			if m.Kind == Broadcast && !bytes.Equal(m.Payload, []byte{0xB0}) {
				t.Fatalf("node %d: unicast relabelled as broadcast: %+v", i, m)
			}
		}
	}
}

// TestInterceptorDeterministicAcrossRuns pins that an interceptor keeping
// seeded state sees the identical deliverable stream on every run, so a
// (seed, config) pair reproduces the attack exactly.
func TestInterceptorDeterministicAcrossRuns(t *testing.T) {
	trace := func() []string {
		var log []string
		ic := InterceptorFunc(func(d Deliverable) []Deliverable {
			log = append(log, fmt.Sprintf("r%d %d->%d k%d %x", d.Round, d.From, d.To, d.Kind, d.Payload))
			return d.Pass()
		})
		nw := New(4, WithInterceptor(ic))
		fns := make([]PlayerFunc, 4)
		for i := range fns {
			fns[i] = func(nd *Node) (interface{}, error) {
				for r := 0; r < 3; r++ {
					nd.SendAll([]byte{byte(nd.Index()), byte(r)})
					if _, err := nd.EndRound(); err != nil {
						return nil, err
					}
				}
				return nil, nil
			}
		}
		for _, r := range Run(nw, fns) {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
		}
		return log
	}
	if a, b := trace(), trace(); !reflect.DeepEqual(a, b) {
		t.Fatalf("interception stream differs across identical runs:\n%v\nvs\n%v", a, b)
	}
}

// TestNilInterceptorZeroOverhead pins the honest fast path: a round on a
// network built without an interceptor allocates exactly as much as one
// built with WithInterceptor(nil), and the absolute per-round allocation
// count stays small — the hook must cost nothing when disabled.
func TestNilInterceptorZeroOverhead(t *testing.T) {
	measure := func(nw *Network) float64 {
		nd := nw.Node(0)
		payload := []byte{1}
		return testing.AllocsPerRun(500, func() {
			nd.Send(0, payload)
			if _, err := nd.EndRound(); err != nil {
				t.Fatal(err)
			}
		})
	}
	plain := measure(New(1))
	withNil := measure(New(1, WithInterceptor(nil)))
	if plain != withNil {
		t.Fatalf("nil interceptor changed round cost: %v allocs vs %v", withNil, plain)
	}
	// The boundary commit allocates the fresh staging table and the staged
	// slice; anything beyond a handful means the nil path grew a hidden cost.
	if plain > 4 {
		t.Fatalf("honest round allocates %v times, want <= 4", plain)
	}
}
