// Command persistence demonstrates the paper's §1.2 storage pattern: "the
// generator is run to produce as many coins as the current execution of the
// application needs, plus another (distributed) seed. The new seed is
// stored until the next execution of the application."
//
// Session 1 consumes some coins and writes each player's remaining sealed
// batch to disk. Session 2 — a fresh network, as if the processes had been
// restarted — restores the batches and keeps generating, including running
// a full Coin-Gen refill funded entirely by the restored seed. The trusted
// dealer is never consulted again.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/coin"
	"repro/internal/core"
)

const (
	n = 7
	t = 1
	k = 32
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "dprbg-seed-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	field := repro.MustNewField(k)
	rng := rand.New(rand.NewSource(2026))

	// ---- Session 1: one-time trusted setup, consume, store. ----
	batches, _, err := coin.DealTrusted(field, n, t, 12, rng)
	if err != nil {
		return err
	}
	nw1 := repro.NewNetwork(n)
	fns := make([]repro.PlayerFunc, n)
	for i := 0; i < n; i++ {
		i := i
		fns[i] = func(nd *repro.Node) (interface{}, error) {
			var out []repro.Element
			for c := 0; c < 4; c++ { // the "application" uses 4 coins
				v, err := batches[i].Expose(nd)
				if err != nil {
					return nil, err
				}
				out = append(out, v)
			}
			return out, nil
		}
	}
	for i, r := range repro.Run(nw1, fns) {
		if r.Err != nil {
			return fmt.Errorf("session 1 player %d: %w", i, r.Err)
		}
	}
	for i, b := range batches {
		data, err := b.MarshalBinary()
		if err != nil {
			return err
		}
		if err := os.WriteFile(seedFile(dir, i), data, 0o600); err != nil {
			return err
		}
	}
	fmt.Printf("session 1: consumed 4 coins, stored %d-coin seeds under %s\n",
		batches[0].Remaining(), dir)

	// ---- Session 2: fresh processes restore the stored seed. ----
	cfg := repro.Config{Field: field, N: n, T: t, BatchSize: 16}
	gens := make([]*repro.Generator, n)
	for i := range gens {
		data, err := os.ReadFile(seedFile(dir, i))
		if err != nil {
			return err
		}
		restored, err := coin.UnmarshalBatch(data)
		if err != nil {
			return err
		}
		gens[i], err = core.NewFromBatch(cfg, restored)
		if err != nil {
			return err
		}
	}
	nw2 := repro.NewNetwork(n)
	fns2 := make([]repro.PlayerFunc, n)
	for i := 0; i < n; i++ {
		i := i
		fns2[i] = func(nd *repro.Node) (interface{}, error) {
			rnd := rand.New(rand.NewSource(int64(3000 + i)))
			var out []repro.Element
			for c := 0; c < 20; c++ { // more than the stored seed: forces a refill
				v, err := gens[i].Next(nd, rnd)
				if err != nil {
					return nil, err
				}
				out = append(out, v)
			}
			return out, nil
		}
	}
	results := repro.Run(nw2, fns2)
	ref := results[0].Value.([]repro.Element)
	for i, r := range results {
		if r.Err != nil {
			return fmt.Errorf("session 2 player %d: %w", i, r.Err)
		}
		for h, v := range r.Value.([]repro.Element) {
			if v != ref[h] {
				return fmt.Errorf("unanimity violated at player %d coin %d", i, h)
			}
		}
	}
	st := gens[0].Stats()
	fmt.Printf("session 2: restored seeds, delivered %d more coins "+
		"(%d Coin-Gen refills funded by the stored seed — no dealer involved)\n",
		st.CoinsDelivered, st.Batches)
	fmt.Printf("first restored-session coins: %08x %08x %08x ...\n", ref[0], ref[1], ref[2])
	return nil
}

func seedFile(dir string, player int) string {
	return filepath.Join(dir, fmt.Sprintf("player-%d.seed", player))
}
