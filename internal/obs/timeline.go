package obs

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/metrics"
)

// PhaseCost is one closed span of a single player, with its position in the
// span hierarchy and the counter diff it observed.
//
// Attribution semantics: the tracer snapshots the shared (process-wide)
// counters at span entry and exit, and the simnet lockstep keeps every
// honest player inside the same phase between two round barriers. A phase
// span therefore observes (approximately) the total cost of that phase
// across ALL players — which is exactly the unit the paper's lemmas charge
// ("n messages of size k", "one interpolation per player" → n
// interpolations). Rounds are exact: they only advance at barriers. For a
// per-phase table, read one player's spans; do not sum the same phase over
// players, which would multiply-count by n.
type PhaseCost struct {
	// Span is the span id; Parent its enclosing span (0 at the root).
	Span, Parent uint64
	// Name and Kind identify the phase ("bitgen/deal", "gradecast", …).
	Name string
	Kind SpanKind
	// Depth is the nesting level (0 for root spans).
	Depth int
	// BeginRound/EndRound are the player's completed-round counts at span
	// entry and exit; EndRound−BeginRound is the span's round consumption
	// as seen by that player.
	BeginRound, EndRound int
	// Cost is the counter diff across the span (zero if the tracer had no
	// counters attached or the span never closed).
	Cost metrics.Snapshot
}

// Rounds returns the rounds consumed within the span.
func (p PhaseCost) Rounds() int { return p.EndRound - p.BeginRound }

// FieldOps returns the total field operations (adds+muls+invs) in the span.
func (p PhaseCost) FieldOps() int64 {
	return p.Cost.FieldAdds + p.Cost.FieldMuls + p.Cost.FieldInvs
}

// PhaseSummary extracts the closed spans of one player from an event
// sequence, in span-begin order. Spans that never closed are omitted.
func PhaseSummary(events []Event, player int) []PhaseCost {
	type open struct {
		row PhaseCost
		idx int // position in out, reserved at begin
	}
	byID := make(map[uint64]*open)
	var rows []*open
	depth := make(map[uint64]int) // span id -> depth
	for _, e := range events {
		if e.Player != player {
			continue
		}
		switch e.Type {
		case EvSpanBegin:
			d := 0
			if e.Parent != 0 {
				d = depth[e.Parent] + 1
			}
			depth[e.Span] = d
			o := &open{row: PhaseCost{
				Span: e.Span, Parent: e.Parent, Name: e.Name, Kind: e.Kind,
				Depth: d, BeginRound: e.Round, EndRound: -1,
			}}
			byID[e.Span] = o
			rows = append(rows, o)
		case EvSpanEnd:
			o, ok := byID[e.Span]
			if !ok {
				continue
			}
			o.row.EndRound = e.Round
			if e.Cost != nil {
				o.row.Cost = *e.Cost
			}
		}
	}
	out := make([]PhaseCost, 0, len(rows))
	for _, o := range rows {
		if o.row.EndRound < 0 {
			continue // never closed
		}
		out = append(out, o.row)
	}
	return out
}

// WritePhaseTable renders a PhaseSummary as an indented table: one row per
// span, children indented under their parent, with the cost columns the
// paper states its lemmas in.
func WritePhaseTable(w io.Writer, rows []PhaseCost) {
	fmt.Fprintf(w, "%-34s %7s %9s %12s %8s %8s %12s\n",
		"phase", "rounds", "msgs", "bytes", "bcasts", "interp", "field-ops")
	for _, r := range rows {
		name := r.Name
		for i := 0; i < r.Depth; i++ {
			name = "  " + name
		}
		fmt.Fprintf(w, "%-34s %7d %9d %12d %8d %8d %12d\n",
			name, r.Rounds(), r.Cost.Messages, r.Cost.Bytes,
			r.Cost.Broadcasts, r.Cost.Interpolations, r.FieldOps())
	}
}

// AggregatePhases sums the costs of all spans (of the given player) whose
// name maps to the same label under rename, in first-appearance order.
// Spans whose name is absent from rename are skipped. Because the mapped
// span names must not nest within one another, no cost is double-counted;
// callers choose rename so this holds (e.g. map only leaf phases).
func AggregatePhases(events []Event, player int, rename map[string]string) []PhaseCost {
	rows := PhaseSummary(events, player)
	idx := make(map[string]int)
	var out []PhaseCost
	for _, r := range rows {
		label, ok := rename[r.Name]
		if !ok {
			continue
		}
		i, seen := idx[label]
		if !seen {
			idx[label] = len(out)
			r.Name = label
			r.Depth = 0
			out = append(out, r)
			continue
		}
		acc := &out[i]
		acc.Cost = acc.Cost.Add(r.Cost)
		// Rounds accumulate by summing each occurrence's consumption.
		acc.EndRound = acc.BeginRound + acc.Rounds() + r.Rounds()
	}
	return out
}

// Timeline renders a human-readable per-round account of an event
// sequence: one block per network round with its delivery totals, listing
// span transitions and protocol events, with per-player send/broadcast
// traffic aggregated into one line per round.
//
// Merged cluster traces (MergeTraces/MergeJSONL) render too: when the
// stream carries more than one origin, every line is prefixed with the
// emitting node ("[n3 p3]") so one artifact shows a whole round interleaved
// across all processes, and when it spans more than one epoch the round
// headers carry the epoch.
func Timeline(w io.Writer, events []Event) {
	type roundKey struct{ epoch, round int }
	type roundAgg struct {
		key        roundKey
		sends      int64
		sendBytes  int64
		bcasts     int64
		delivered  int64
		delivBytes int64
		lines      []string
	}
	origins := make(map[int]bool)
	epochs := make(map[int]bool)
	for _, e := range events {
		origins[e.Origin] = true
		epochs[e.Epoch] = true
	}
	multiOrigin := len(origins) > 1
	multiEpoch := len(epochs) > 1
	who := func(e Event) string {
		if multiOrigin {
			return fmt.Sprintf("[n%d p%d]", e.Origin, e.Player)
		}
		return fmt.Sprintf("[p%d]", e.Player)
	}
	byRound := make(map[roundKey]*roundAgg)
	order := []roundKey{}
	get := func(k roundKey) *roundAgg {
		a, ok := byRound[k]
		if !ok {
			a = &roundAgg{key: k}
			byRound[k] = a
			order = append(order, k)
		}
		return a
	}
	for _, e := range events {
		a := get(roundKey{e.Epoch, e.Round})
		switch e.Type {
		case EvSend:
			a.sends++
			a.sendBytes += e.Bytes
		case EvBroadcast:
			a.bcasts++
			a.sendBytes += e.Bytes
		case EvDeliver:
			a.delivered++
			a.delivBytes += e.Bytes
		case EvRound:
			// totals already accumulated from deliveries; nothing to add
		case EvSpanBegin:
			a.lines = append(a.lines, fmt.Sprintf("%s ▶ %s %s", who(e), e.Kind, e.Name))
		case EvSpanEnd:
			line := fmt.Sprintf("%s ◀ %s %s", who(e), e.Kind, e.Name)
			if e.Cost != nil {
				line += fmt.Sprintf(" (%d rounds-span: msgs=%d bytes=%d interp=%d)",
					e.Cost.Rounds, e.Cost.Messages, e.Cost.Bytes, e.Cost.Interpolations)
			}
			a.lines = append(a.lines, line)
		case EvDealerBad:
			a.lines = append(a.lines, fmt.Sprintf("%s dealer %d disqualified", who(e), e.From))
		case EvClique:
			a.lines = append(a.lines, fmt.Sprintf("%s clique of %d found", who(e), e.Count))
		case EvLeader:
			a.lines = append(a.lines, fmt.Sprintf("%s leader %d elected (attempt %d)", who(e), e.Value, e.Count))
		case EvDecision:
			a.lines = append(a.lines, fmt.Sprintf("%s BA decided %d", who(e), e.Value))
		case EvCoinSealed:
			a.lines = append(a.lines, fmt.Sprintf("%s %d coins sealed", who(e), e.Count))
		case EvCoinExposed:
			a.lines = append(a.lines, fmt.Sprintf("%s coin %d exposed = %#x", who(e), e.Count, e.Value))
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].epoch != order[j].epoch {
			return order[i].epoch < order[j].epoch
		}
		return order[i].round < order[j].round
	})
	for _, k := range order {
		a := byRound[k]
		if multiEpoch {
			fmt.Fprintf(w, "epoch %d round %d: %d sent (+%d bcast), %d delivered, %d B\n",
				k.epoch, k.round, a.sends, a.bcasts, a.delivered, a.delivBytes)
		} else {
			fmt.Fprintf(w, "round %d: %d sent (+%d bcast), %d delivered, %d B\n",
				k.round, a.sends, a.bcasts, a.delivered, a.delivBytes)
		}
		for _, l := range a.lines {
			fmt.Fprintf(w, "  %s\n", l)
		}
	}
}
