package main

import (
	"fmt"

	"repro/internal/gf2k"
	"repro/internal/metrics"
)

// runE1 — Lemma 1: a dealer whose sharing has degree > t passes VSS with
// probability at most 1/p over the challenge coin. Monte Carlo in tiny
// fields where the bound is visible.
func runE1() {
	fmt.Printf("n=4, t=1, M=1, cheating dealer (degree t+1), 2000 trials per field\n\n")
	fmt.Printf("%6s %10s %12s %14s %10s\n", "k", "p=2^k", "accepted", "measured", "bound 1/p")
	for _, k := range []int{4, 6, 8} {
		field := gf2k.MustNew(k)
		const trials = 2000
		accepted := 0
		for trial := 0; trial < trials; trial++ {
			if vssCeremony(field, 4, 1, 1, int64(k*10000+trial), 2, nil) {
				accepted++
			}
		}
		rate := float64(accepted) / trials
		bound := 1.0 / float64(uint64(1)<<k)
		verdict := "PASS"
		if rate > 3*bound+0.01 {
			verdict = "FAIL"
		}
		fmt.Printf("%6d %10d %12d %13.4f%% %9.4f%%  %s\n",
			k, uint64(1)<<k, accepted, rate*100, bound*100, verdict)
	}
	fmt.Println("\nmeasured acceptance tracks the 1/p bound (within Monte-Carlo noise).")
}

// runE2 — Lemma 2: single-secret VSS costs 2 rounds of n messages of size k
// plus one interpolation per player (excluding the coin expose).
func runE2() {
	k := 32
	field := gf2k.MustNew(k)
	elem := field.ByteLen()
	fmt.Printf("k=%d (element = %d bytes), honest dealer, M=1\n\n", k, elem)
	fmt.Printf("%6s %6s | %8s %10s %8s %14s | %s\n",
		"n", "t", "rounds", "msgs", "bcasts", "interp/player", "bytes (deal+expose+verify)")
	for _, tc := range []struct{ n, t int }{{4, 1}, {7, 2}, {13, 4}, {25, 8}} {
		var ctr metrics.Counters
		ok := vssCeremony(field, tc.n, tc.t, 1, int64(tc.n), 0, &ctr)
		s := ctr.Snapshot()
		fmt.Printf("%6d %6d | %8d %10d %8d %14.1f | %d",
			tc.n, tc.t, s.Rounds, s.Messages, s.Broadcasts,
			float64(s.Interpolations)/float64(tc.n), s.Bytes)
		if !ok {
			fmt.Printf("  !! rejected")
		}
		fmt.Println()
	}
	fmt.Println("\n3 rounds = deal + coin-expose + verify; one verification interpolation")
	fmt.Println("per player (Lemma 2's '2 polynomial interpolations' counts the coin")
	fmt.Println("expose, which is also a single interpolation).")
}

// runE3 — Lemma 3: Batch-VSS soundness error grows linearly in M (≤ M/p).
func runE3() {
	k := 10
	field := gf2k.MustNew(k)
	p := float64(uint64(1) << k)
	fmt.Printf("n=4, t=1, GF(2^%d) (p=%d), cheating dealer, 1500 trials per M\n\n", k, 1<<k)
	fmt.Printf("%6s %12s %14s %12s\n", "M", "accepted", "measured", "bound M/p")
	for _, m := range []int{1, 4, 16, 64} {
		const trials = 1500
		accepted := 0
		for trial := 0; trial < trials; trial++ {
			if vssCeremony(field, 4, 1, m, int64(m*100000+trial), 2, nil) {
				accepted++
			}
		}
		rate := float64(accepted) / trials
		bound := float64(m) / p
		verdict := "PASS"
		if rate > 3*bound+0.01 {
			verdict = "FAIL"
		}
		fmt.Printf("%6d %12d %13.3f%% %11.3f%%  %s\n", m, accepted, rate*100, bound*100, verdict)
	}
	fmt.Println("\nacceptance scales with M as Lemma 3 predicts.")
}

// runE4 — Lemma 4 + Corollary 1: Batch-VSS amortized per-secret cost falls
// as ~2nk/M + const bytes; interpolations per player stay at 1 per ceremony.
func runE4() {
	k, n, t := 32, 7, 2
	field := gf2k.MustNew(k)
	fmt.Printf("n=%d, t=%d, GF(2^%d), honest dealer\n\n", n, t, k)
	fmt.Printf("%8s %14s %14s %14s %16s\n", "M", "bytes total", "bytes/secret", "msgs/secret", "interp/player")
	for _, m := range []int{1, 4, 16, 64, 256, 1024} {
		var ctr metrics.Counters
		if !vssCeremony(field, n, t, m, int64(m), 0, &ctr) {
			fmt.Printf("%8d  REJECTED (unexpected)\n", m)
			continue
		}
		s := ctr.Snapshot()
		fmt.Printf("%8d %14d %14.1f %14.2f %16.2f\n",
			m, s.Bytes,
			float64(s.Bytes)/float64(m),
			float64(s.Messages)/float64(m),
			float64(s.Interpolations)/float64(n))
	}
	fmt.Println("\nper-secret bytes fall toward the dealing floor (n·k bits per secret);")
	fmt.Println("verification cost (messages + interpolation) is independent of M.")
}
