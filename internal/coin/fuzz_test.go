package coin

import (
	"math/rand"
	"testing"

	"repro/internal/gf2k"
)

// FuzzUnmarshalBatch: the batch decoder must never panic, and everything it
// accepts must survive a marshal/unmarshal round trip unchanged.
func FuzzUnmarshalBatch(f *testing.F) {
	field := gf2k.MustNew(16)
	rng := rand.New(rand.NewSource(1))
	batches, _, err := DealTrusted(field, 4, 1, 3, rng)
	if err != nil {
		f.Fatal(err)
	}
	good, err := batches[0].MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte(batchMagic))
	f.Add(append([]byte{}, good[:len(good)-1]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := UnmarshalBatch(data)
		if err != nil {
			return
		}
		re, err := b.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted batch fails to re-marshal: %v", err)
		}
		b2, err := UnmarshalBatch(re)
		if err != nil {
			t.Fatalf("re-marshalled batch rejected: %v", err)
		}
		if b2.T != b.T || b2.Silent != b.Silent || len(b2.S) != len(b.S) ||
			len(b2.Shares) != len(b.Shares) || b2.Cursor() != b.Cursor() {
			t.Fatal("round trip not idempotent")
		}
	})
}
