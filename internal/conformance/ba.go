package conformance

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/ba"
	"repro/internal/simnet"
)

// BAOutcome is the result of one Byzantine-agreement conformance scenario.
type BAOutcome struct {
	Env             *env
	Corrupt, Honest []int
	// Inputs[i] is player i's BA input; Decisions the honest outputs.
	Inputs    []byte
	Decisions map[int]byte
	// Unanimous is the honest players' common input when they all agree
	// (validity applies), or 0xFF when inputs are mixed.
	Unanimous byte
}

// baAttacker is the corrupted player in every BA scenario. Index 0 is the
// king of phase 0, the strongest position for a single fault.
const baAttacker = 0

// RunBA executes one phase-king BA conformance scenario. Variant selects
// the honest input pattern: "ones", "zeros" or "mixed" (player index mod 2).
func RunBA(sc Scenario) (*BAOutcome, error) {
	out := &BAOutcome{Decisions: map[int]byte{}}
	inputs := make([]byte, sc.N)
	switch sc.Variant {
	case "ones":
		for i := range inputs {
			inputs[i] = 1
		}
	case "zeros":
		// all zero already
	case "mixed":
		for i := range inputs {
			inputs[i] = byte(i & 1)
		}
	default:
		return nil, fmt.Errorf("conformance: unknown ba input variant %q", sc.Variant)
	}
	out.Inputs = inputs

	var ic simnet.Interceptor
	switch sc.Attack {
	case "honest", "griefer-king", "crash":
	case "vote-equivocator":
		// The attacker's code is honest; the message layer rewrites its
		// one-byte votes per recipient.
		out.Corrupt = []int{baAttacker}
		ic = adversary.VoteEquivocator(baAttacker)
	default:
		return nil, fmt.Errorf("conformance: unknown ba attack %q", sc.Attack)
	}

	e, err := newEnv(sc, ic, 0)
	if err != nil {
		return nil, err
	}
	out.Env = e

	fns := make([]simnet.PlayerFunc, sc.N)
	for i := range fns {
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			return ba.PhaseKing{T: sc.T}.Run(nd, inputs[nd.Index()])
		}
	}
	switch sc.Attack {
	case "griefer-king":
		out.Corrupt = []int{baAttacker}
		fns[baAttacker] = adversary.PhaseKingGriefer(sc.T, e.attackSeed(baAttacker))
	case "crash":
		out.Corrupt = []int{baAttacker}
		fns[baAttacker] = adversary.Crash()
	}

	// Validity is about the inputs of everyone running honest code — the
	// schedule-disturbed players included (they vote too; the adversary
	// delaying their packets does not change what they want). Agreement and
	// the decision assertions then apply to the undisturbed subset.
	codeHonest := honestSet(sc.N, out.Corrupt)
	out.Honest = sc.assertable(out.Corrupt)
	out.Unanimous = 0xFF
	agree := true
	for _, i := range codeHonest[1:] {
		if inputs[i] != inputs[codeHonest[0]] {
			agree = false
		}
	}
	if agree {
		out.Unanimous = inputs[codeHonest[0]]
	}
	results := simnet.Run(e.nw, fns)
	if err := checkHonest(e, results, out.Honest); err != nil {
		return nil, err
	}
	for _, i := range out.Honest {
		d, ok := results[i].Value.(byte)
		if !ok {
			return nil, e.failf("player %d returned %T, want byte", i, results[i].Value)
		}
		out.Decisions[i] = d
	}
	return out, nil
}

// Check asserts BA's agreement and validity properties: all honest players
// decide the same bit, and when the honest inputs were unanimous the
// decision is that input regardless of the adversary.
func (o *BAOutcome) Check() error {
	e := o.Env
	if len(o.Honest) == 0 {
		return nil // every honest player disturbed: nothing is assertable
	}
	ref := o.Decisions[o.Honest[0]]
	for _, i := range o.Honest {
		if o.Decisions[i] != ref {
			return e.failf("agreement violated: player %d decided %d, player %d decided %d",
				o.Honest[0], ref, i, o.Decisions[i])
		}
	}
	if o.Unanimous != 0xFF && ref != o.Unanimous {
		return e.failf("validity violated: unanimous honest input %d, decision %d", o.Unanimous, ref)
	}
	return nil
}
