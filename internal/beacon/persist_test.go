package beacon

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gf2k"
)

// TestLoadCoinLogTornTailDropped pins the crash-recovery contract for the
// public coin log: a final line not terminated by '\n' is a torn append and
// must be dropped even when the fragment still parses. "2 deadbeef" torn to
// "2 dead" yields index 2 with value 0xdead — loading it would silently
// fork this daemon's log from the cluster's.
func TestLoadCoinLogTornTailDropped(t *testing.T) {
	cases := []struct {
		name, data string
		want       []gf2k.Element
	}{
		{"clean", "0 aa\n1 bb\n", []gf2k.Element{0xaa, 0xbb}},
		{"torn parseable", "0 aa\n1 bb\n2 dead", []gf2k.Element{0xaa, 0xbb}},
		{"torn garbage", "0 aa\n1 bb\n2 de", []gf2k.Element{0xaa, 0xbb}},
		{"torn mid-index", "0 aa\n1", []gf2k.Element{0xaa}},
		{"single torn line", "0 a", nil},
		{"empty", "", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "coins")
			if err := os.WriteFile(path, []byte(tc.data), 0o600); err != nil {
				t.Fatal(err)
			}
			got, err := LoadCoinLog(path)
			if err != nil {
				t.Fatalf("LoadCoinLog: %v", err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("loaded %d entries, want %d", len(got), len(tc.want))
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("entry %d = %x, want %x", i, uint64(got[i]), uint64(tc.want[i]))
				}
			}
		})
	}
}

// TestLoadCoinLogCorruptInterior checks that damage inside the terminated
// prefix is still a loud failure, not a silent truncation.
func TestLoadCoinLogCorruptInterior(t *testing.T) {
	for name, data := range map[string]string{
		"bad line":  "0 aa\nnonsense\n2 cc\n",
		"index gap": "0 aa\n2 cc\n",
	} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "coins")
			if err := os.WriteFile(path, []byte(data), 0o600); err != nil {
				t.Fatal(err)
			}
			if _, err := LoadCoinLog(path); err == nil || !strings.Contains(err.Error(), "corrupt") {
				t.Fatalf("LoadCoinLog error = %v, want corruption failure", err)
			}
		})
	}
}
