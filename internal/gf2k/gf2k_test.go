package gf2k

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/metrics"
)

// testDegrees spans small, medium, byte-aligned and extreme extension
// degrees; every algebraic property is checked on each of them.
var testDegrees = []int{2, 3, 4, 7, 8, 10, 13, 16, 24, 31, 32, 40, 53, 63, 64}

func randElem(f Field, rng *rand.Rand) Element {
	return Element(rng.Uint64()) & Element(f.mask())
}

func TestNewRejectsBadDegrees(t *testing.T) {
	for _, k := range []int{-1, 0, 1, 65, 128} {
		if _, err := New(k); err == nil {
			t.Errorf("New(%d): expected error, got nil", k)
		}
	}
}

func TestModulusIsIrreducible(t *testing.T) {
	for _, k := range testDegrees {
		f := MustNew(k)
		if !isIrreducible(k, f.Modulus()) {
			t.Errorf("GF(2^%d): modulus %#x fails Rabin irreducibility test", k, f.Modulus())
		}
	}
}

func TestKnownModuli(t *testing.T) {
	// Cross-check a few degrees against published low-weight irreducible
	// polynomials (these are the lexicographically smallest, e.g. AES's
	// x^8+x^4+x^3+x+1 for k=8).
	tests := []struct {
		k    int
		taps uint64
	}{
		{2, 0x3},  // x^2+x+1
		{3, 0x3},  // x^3+x+1
		{4, 0x3},  // x^4+x+1
		{8, 0x1b}, // x^8+x^4+x^3+x+1
	}
	for _, tt := range tests {
		f := MustNew(tt.k)
		if f.Modulus() != tt.taps {
			t.Errorf("GF(2^%d): modulus = %#x, want %#x", tt.k, f.Modulus(), tt.taps)
		}
	}
}

func TestAddIsXor(t *testing.T) {
	f := MustNew(16)
	if got := f.Add(0x1234, 0x00ff); got != 0x12cb {
		t.Errorf("Add = %#x, want %#x", got, 0x12cb)
	}
	if got := f.Add(0x1234, 0x1234); got != 0 {
		t.Errorf("a+a = %#x, want 0 (characteristic 2)", got)
	}
}

func TestMulSmallFieldTable(t *testing.T) {
	// GF(4) = {0,1,x,x+1} with x^2 = x+1: full multiplication table.
	f := MustNew(2)
	want := [4][4]Element{
		{0, 0, 0, 0},
		{0, 1, 2, 3},
		{0, 2, 3, 1},
		{0, 3, 1, 2},
	}
	for a := Element(0); a < 4; a++ {
		for b := Element(0); b < 4; b++ {
			if got := f.Mul(a, b); got != want[a][b] {
				t.Errorf("GF(4): %d*%d = %d, want %d", a, b, got, want[a][b])
			}
		}
	}
}

func TestFieldAxiomsQuick(t *testing.T) {
	for _, k := range testDegrees {
		f := MustNew(k)
		rng := rand.New(rand.NewSource(int64(k)))
		cfg := &quick.Config{
			MaxCount: 200,
			Values: func(vals []reflect.Value, _ *rand.Rand) {
				for i := range vals {
					vals[i] = reflect.ValueOf(randElem(f, rng))
				}
			},
		}
		if err := quick.Check(func(a, b, c Element) bool {
			// Commutativity, associativity, distributivity.
			if f.Mul(a, b) != f.Mul(b, a) {
				return false
			}
			if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
				return false
			}
			return f.Mul(a, f.Add(b, c)) == f.Add(f.Mul(a, b), f.Mul(a, c))
		}, cfg); err != nil {
			t.Errorf("GF(2^%d) axioms: %v", k, err)
		}
	}
}

func TestMulIdentityAndZero(t *testing.T) {
	for _, k := range testDegrees {
		f := MustNew(k)
		rng := rand.New(rand.NewSource(7 * int64(k)))
		for i := 0; i < 50; i++ {
			a := randElem(f, rng)
			if f.Mul(a, 1) != a {
				t.Fatalf("GF(2^%d): a*1 != a for a=%#x", k, a)
			}
			if f.Mul(a, 0) != 0 {
				t.Fatalf("GF(2^%d): a*0 != 0 for a=%#x", k, a)
			}
		}
	}
}

func TestInv(t *testing.T) {
	for _, k := range testDegrees {
		f := MustNew(k)
		rng := rand.New(rand.NewSource(11 * int64(k)))
		for i := 0; i < 50; i++ {
			a := randElem(f, rng)
			if a == 0 {
				continue
			}
			inv := f.Inv(a)
			if got := f.Mul(a, inv); got != 1 {
				t.Fatalf("GF(2^%d): a*Inv(a) = %#x, want 1 (a=%#x)", k, got, a)
			}
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	MustNew(8).Inv(0)
}

func TestDivRoundTrip(t *testing.T) {
	f := MustNew(32)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		a, b := randElem(f, rng), randElem(f, rng)
		if b == 0 {
			continue
		}
		if got := f.Mul(f.Div(a, b), b); got != a {
			t.Fatalf("(a/b)*b = %#x, want %#x", got, a)
		}
	}
}

func TestExp(t *testing.T) {
	f := MustNew(16)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 30; i++ {
		a := randElem(f, rng)
		want := Element(1)
		for e := uint64(0); e < 20; e++ {
			if got := f.Exp(a, e); got != want {
				t.Fatalf("Exp(%#x, %d) = %#x, want %#x", a, e, got, want)
			}
			want = f.Mul(want, a)
		}
	}
	// Fermat: a^(2^k - 1) = 1 for a != 0.
	for i := 0; i < 30; i++ {
		a := randElem(f, rng)
		if a == 0 {
			continue
		}
		if got := f.Exp(a, (1<<16)-1); got != 1 {
			t.Fatalf("a^(2^16-1) = %#x, want 1", got)
		}
	}
}

func TestFrobeniusFixedField(t *testing.T) {
	// x -> x^2 is a field automorphism: (a+b)^2 = a^2 + b^2.
	for _, k := range testDegrees {
		f := MustNew(k)
		rng := rand.New(rand.NewSource(13 * int64(k)))
		for i := 0; i < 30; i++ {
			a, b := randElem(f, rng), randElem(f, rng)
			if f.Sqr(f.Add(a, b)) != f.Add(f.Sqr(a), f.Sqr(b)) {
				t.Fatalf("GF(2^%d): Frobenius not additive", k)
			}
		}
	}
}

func TestRandProducesValidElements(t *testing.T) {
	for _, k := range testDegrees {
		f := MustNew(k)
		rng := rand.New(rand.NewSource(int64(k) * 17))
		for i := 0; i < 50; i++ {
			e, err := f.Rand(rng)
			if err != nil {
				t.Fatalf("GF(2^%d): Rand: %v", k, err)
			}
			if !f.Valid(e) {
				t.Fatalf("GF(2^%d): Rand produced out-of-range element %#x", k, e)
			}
		}
	}
}

func TestRandErrorPropagates(t *testing.T) {
	f := MustNew(8)
	if _, err := f.Rand(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error from empty randomness source")
	}
}

func TestElementFromID(t *testing.T) {
	f := MustNew(8)
	if _, err := f.ElementFromID(0); err == nil {
		t.Error("id 0 accepted")
	}
	if _, err := f.ElementFromID(-3); err == nil {
		t.Error("negative id accepted")
	}
	if _, err := f.ElementFromID(256); err == nil {
		t.Error("id 256 should not fit in GF(2^8)")
	}
	e, err := f.ElementFromID(255)
	if err != nil || e != 255 {
		t.Errorf("ElementFromID(255) = %v, %v", e, err)
	}
}

func TestElementEncodingRoundTrip(t *testing.T) {
	for _, k := range testDegrees {
		f := MustNew(k)
		rng := rand.New(rand.NewSource(23 * int64(k)))
		var buf []byte
		var want []Element
		for i := 0; i < 20; i++ {
			e := randElem(f, rng)
			want = append(want, e)
			buf = f.AppendElement(buf, e)
		}
		if len(buf) != 20*f.ByteLen() {
			t.Fatalf("GF(2^%d): encoded length %d, want %d", k, len(buf), 20*f.ByteLen())
		}
		got, rest, err := f.ReadElements(buf, 20)
		if err != nil {
			t.Fatalf("GF(2^%d): ReadElements: %v", k, err)
		}
		if len(rest) != 0 {
			t.Fatalf("GF(2^%d): %d leftover bytes", k, len(rest))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("GF(2^%d): element %d: got %#x want %#x", k, i, got[i], want[i])
			}
		}
	}
}

func TestReadElementErrors(t *testing.T) {
	f := MustNew(12) // ByteLen = 2, two high bits of second byte invalid
	if _, _, err := f.ReadElement([]byte{0x01}); err == nil {
		t.Error("short buffer accepted")
	}
	if _, _, err := f.ReadElement([]byte{0xff, 0xff}); err == nil {
		t.Error("out-of-range encoding accepted")
	}
}

func TestByteLen(t *testing.T) {
	tests := []struct{ k, want int }{{2, 1}, {8, 1}, {9, 2}, {16, 2}, {17, 3}, {64, 8}}
	for _, tt := range tests {
		if got := MustNew(tt.k).ByteLen(); got != tt.want {
			t.Errorf("ByteLen(k=%d) = %d, want %d", tt.k, got, tt.want)
		}
	}
}

func TestCountersRecordOps(t *testing.T) {
	var c metrics.Counters
	f := MustNew(16).WithCounters(&c)
	f.Add(1, 2)
	f.Mul(3, 4)
	f.Mul(5, 6)
	f.Inv(7)
	s := c.Snapshot()
	if s.FieldAdds != 1 || s.FieldMuls != 2 || s.FieldInvs != 1 {
		t.Errorf("counters = %+v, want adds=1 muls=2 invs=1", s)
	}
}

func TestOrder(t *testing.T) {
	if got := MustNew(10).Order(); got != 1024 {
		t.Errorf("Order(k=10) = %v, want 1024", got)
	}
}

func TestClmul64(t *testing.T) {
	// (x+1)(x+1) = x^2+1 (carry-less).
	if hi, lo := clmul64(3, 3); hi != 0 || lo != 5 {
		t.Errorf("clmul64(3,3) = (%d,%d), want (0,5)", hi, lo)
	}
	// Highest bits: x^63 * x^63 = x^126.
	if hi, lo := clmul64(1<<63, 1<<63); hi != 1<<62 || lo != 0 {
		t.Errorf("clmul64(x^63,x^63) = (%#x,%#x), want (%#x,0)", hi, lo, uint64(1)<<62)
	}
}

func TestDeg128(t *testing.T) {
	tests := []struct {
		hi, lo uint64
		want   int
	}{
		{0, 0, -1},
		{0, 1, 0},
		{0, 1 << 63, 63},
		{1, 0, 64},
		{1 << 62, 0, 126},
	}
	for _, tt := range tests {
		if got := deg128(tt.hi, tt.lo); got != tt.want {
			t.Errorf("deg128(%#x,%#x) = %d, want %d", tt.hi, tt.lo, got, tt.want)
		}
	}
}

func TestMulAgainstExpLog(t *testing.T) {
	// Brute-force cross-check in GF(2^8): compare Mul against repeated
	// addition via the generator's discrete log table.
	f := MustNew(8)
	// Find a generator.
	var g Element
	for cand := Element(2); cand < 256; cand++ {
		seen := make(map[Element]bool)
		x := Element(1)
		for i := 0; i < 255; i++ {
			seen[x] = true
			x = f.Mul(x, cand)
		}
		if len(seen) == 255 {
			g = cand
			break
		}
	}
	if g == 0 {
		t.Fatal("no generator found in GF(2^8)")
	}
	logT := make(map[Element]uint64, 255)
	x := Element(1)
	for i := uint64(0); i < 255; i++ {
		logT[x] = i
		x = f.Mul(x, g)
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		a := Element(rng.Intn(255) + 1)
		b := Element(rng.Intn(255) + 1)
		want := f.Exp(g, (logT[a]+logT[b])%255)
		if got := f.Mul(a, b); got != want {
			t.Fatalf("Mul(%#x,%#x) = %#x, want %#x (exp/log)", a, b, got, want)
		}
	}
}

func BenchmarkMul(b *testing.B) {
	for _, k := range []int{8, 16, 32, 64} {
		f := MustNew(k)
		rng := rand.New(rand.NewSource(1))
		a, c := randElem(f, rng), randElem(f, rng)
		b.Run(benchName(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a = f.Mul(a, c) | 1
			}
		})
	}
}

func BenchmarkInv(b *testing.B) {
	for _, k := range []int{8, 16, 32, 64} {
		f := MustNew(k)
		b.Run(benchName(k), func(b *testing.B) {
			a := Element(3)
			for i := 0; i < b.N; i++ {
				a = f.Inv(a) | 3
			}
		})
	}
}

func benchName(k int) string {
	return "k=" + string(rune('0'+k/10)) + string(rune('0'+k%10))
}

func TestTablesMatchCarryless(t *testing.T) {
	for _, k := range []int{2, 4, 8, 12, 16} {
		base := MustNew(k)
		tf, err := base.WithTables()
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !tf.HasTables() || base.HasTables() {
			t.Fatalf("k=%d: HasTables flags wrong", k)
		}
		rng := rand.New(rand.NewSource(int64(k) * 41))
		for trial := 0; trial < 300; trial++ {
			a, b := randElem(base, rng), randElem(base, rng)
			if tf.Mul(a, b) != base.Mul(a, b) {
				t.Fatalf("k=%d: table Mul(%#x,%#x) diverges", k, a, b)
			}
			if a != 0 && tf.Inv(a) != base.Inv(a) {
				t.Fatalf("k=%d: table Inv(%#x) diverges", k, a)
			}
		}
		// Exhaustive check for the smallest field.
		if k == 4 {
			for a := Element(0); a < 16; a++ {
				for b := Element(0); b < 16; b++ {
					if tf.Mul(a, b) != base.Mul(a, b) {
						t.Fatalf("k=4: exhaustive mismatch at %d,%d", a, b)
					}
				}
			}
		}
	}
	if _, err := MustNew(32).WithTables(); err == nil {
		t.Error("WithTables accepted k=32")
	}
}

func BenchmarkMulTableVsClmul(b *testing.B) {
	base := MustNew(16)
	tab, err := base.WithTables()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	x, y := randElem(base, rng)|1, randElem(base, rng)|1
	b.Run("clmul", func(b *testing.B) {
		a := x
		for i := 0; i < b.N; i++ {
			a = base.Mul(a, y) | 1
		}
	})
	b.Run("table", func(b *testing.B) {
		a := x
		for i := 0; i < b.N; i++ {
			a = tab.Mul(a, y) | 1
		}
	})
}
