// The dealer-free resharing leg of the multi-process soak: a live 7→9
// committee change followed by a proactive share refresh, with a minority
// member SIGKILLed mid-reshare, run entirely through the beacond CLI
// surface (-reshare / -reshare-join) over real loopback TCP.
//
// The leg's phases (all sequential, every daemon its own OS process and —
// unlike the base soak — its own state directory, exactly as deployed):
//
//	H  handover: 7 generation-0 daemons serve armed with the generation-1
//	   roster (6 stayers + 3 joiners; old player 6 leaves). The leaving
//	   member is SIGKILLed mid-reshare — paused at the committed cutover,
//	   journal written, ceremony not yet run — and the handover must
//	   complete without it (a dead old member is a tolerated silent
//	   sub-dealer). The reshare metrics are scraped off a lingering stayer
//	   before it exits.
//	A  the generation-1 committee serves rsEmitG1 coins; every daemon's
//	   beacond_generation gauge must read 1 mid-run.
//	R  reference: the ORIGINAL 7-player committee, restarted from a copy
//	   of the same ceremony output, emits rsEmitG1+6 coins uninterrupted.
//	   The generation-1 stream must byte-match it: identical up to the
//	   cutover, then offset by the 2 tail coins each handover attempt
//	   consumed — the committee changed, the beacon's output stream
//	   did not.
//	B  proactive refresh: the 9 daemons hand over to an identical
//	   generation-2 roster. Every share store must change on disk while
//	   the public stream is preserved.
//	C  the generation-2 committee serves to rsEmitG2 coins — far enough
//	   to force an inline refill, proving the twice-reshared stores still
//	   run Coin-Gen — and all 9 logs must come out byte-identical with
//	   the phase-B stream as a prefix.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/obs/prom"
)

const (
	rsOldN   = 7  // generation-0 committee size
	rsNewN   = 9  // generation-1/2 committee size (6 stayers + 3 joiners)
	rsLeaver = 6  // old-roster member that leaves — and is SIGKILLed mid-reshare
	rsEmitG1 = 16 // coins the generation-1 committee serves before the refresh
	rsEmitG2 = 28 // final target; forces a post-refresh inline refill (32 seeds − 2×2 consumed)
	rsSeeds  = 32 // seedcoins: every pre-refill coin is determined at the deal
)

// rsCluster is the reshare leg's process-level view of the three rosters:
// config paths, every participant's state directory, and the daemons'
// observability addresses.
type rsCluster struct {
	base             string
	g0, g1, g2       string   // peers.yaml paths per generation
	oldDirs          []string // state dir per old-roster member
	newDirs          []string // state dir per new-roster member (stayers alias oldDirs)
	oldHTTP, newHTTP []string
	logDir           string
}

func runReshareLeg(bin, ctl, base string) error {
	rc, err := rsSetup(bin, base)
	if err != nil {
		return err
	}

	// Phase H: armed generation-0 daemons, victim killed mid-reshare.
	cut1, att1, err := rc.runHandover(bin, ctl)
	if err != nil {
		return fmt.Errorf("handover: %w", err)
	}
	fmt.Printf("soak: reshare handover 7→9 complete at cutover %d on attempt %d (leaver %d killed mid-reshare)\n",
		cut1, att1, rsLeaver)

	// Phase A: the generation-1 committee serves.
	if err := rc.runCommittee(bin, rc.g1, rsEmitG1, 1); err != nil {
		return fmt.Errorf("generation-1 serving: %w", err)
	}
	gen1, err := rsCoinValues(rsCoinLog(rc.newDirs[0], 0))
	if err != nil {
		return err
	}
	if err := rc.checkLogsIdentical(rsEmitG1); err != nil {
		return fmt.Errorf("generation-1 logs: %w", err)
	}
	fmt.Printf("soak: generation-1 committee served %d coins, all 9 logs byte-identical\n", rsEmitG1)

	// Phase R: the uninterrupted reference stream from the original
	// committee. Each handover attempt consumed 2 tail coins (challenge +
	// mask) at fixed attempt-indexed positions, so the new committee's coin
	// i ≥ cut1 is the old committee's would-be coin i+2(att1+1). The
	// reference emits enough to cover the worst case (3 attempts).
	if err := rc.runReference(bin); err != nil {
		return fmt.Errorf("reference run: %w", err)
	}
	ref, err := rsCoinValues(rsCoinLog(filepath.Join(rc.base, "ref-0"), 0))
	if err != nil {
		return err
	}
	if len(ref) != rsEmitG1+6 {
		return fmt.Errorf("reference run emitted %d coins, want %d", len(ref), rsEmitG1+6)
	}
	burn := 2 * (att1 + 1)
	for i, v := range gen1 {
		want := ref[i]
		if i >= cut1 {
			want = ref[i+burn]
		}
		if v != want {
			return fmt.Errorf("post-handover stream diverged at coin %d (cutover %d, burn %d): %s != reference %s",
				i, cut1, burn, v, want)
		}
	}
	fmt.Printf("soak: generation-1 stream byte-matches the never-reshared reference (offset %d past the cutover)\n", burn)

	// Phase B: proactive refresh g1 → g2 (identical membership).
	storeBefore, err := rsFileHash(filepath.Join(rc.newDirs[0], "player-000.store"))
	if err != nil {
		return err
	}
	cut2, err := rc.runRefresh(bin)
	if err != nil {
		return fmt.Errorf("proactive refresh: %w", err)
	}
	storeAfter, err := rsFileHash(filepath.Join(rc.newDirs[0], "player-000.store"))
	if err != nil {
		return err
	}
	if storeBefore == storeAfter {
		return fmt.Errorf("proactive refresh left player 0's share store byte-identical — shares were not refreshed")
	}
	if _, err := os.Stat(filepath.Join(rc.newDirs[0], "reshare-journal.json")); !os.IsNotExist(err) {
		return fmt.Errorf("reshare journal not cleared after the refresh (err=%v)", err)
	}
	prefix, err := rsCoinValues(rsCoinLog(rc.newDirs[0], 0))
	if err != nil {
		return err
	}
	fmt.Printf("soak: proactive refresh complete at cutover %d, share stores rotated on disk\n", cut2)

	// Phase C: the generation-2 committee serves through an inline refill.
	if err := rc.runCommittee(bin, rc.g2, rsEmitG2, 2); err != nil {
		return fmt.Errorf("generation-2 serving: %w", err)
	}
	if err := rc.checkLogsIdentical(rsEmitG2); err != nil {
		return fmt.Errorf("generation-2 logs: %w", err)
	}
	final, err := rsCoinValues(rsCoinLog(rc.newDirs[0], 0))
	if err != nil {
		return err
	}
	for i, v := range prefix {
		if final[i] != v {
			return fmt.Errorf("refresh changed public coin %d: %s != %s", i, final[i], v)
		}
	}
	fmt.Printf("soak: reshare leg PASS — 7→9 handover under a mid-reshare SIGKILL, proactive refresh, %d coins through 3 committee generations\n", rsEmitG2)
	return nil
}

// rsSetup reserves ports, writes the three rosters, runs the one-time
// dealer ceremony and scatters each old member's state files into its own
// directory (the deal output itself is kept pristine for the reference run).
func rsSetup(bin, base string) (*rsCluster, error) {
	rc := &rsCluster{base: base, logDir: filepath.Join(base, "logs")}
	dealDir := filepath.Join(base, "deal")
	for _, d := range []string{base, rc.logDir, dealDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}

	reserve := func() (string, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", err
		}
		addr := ln.Addr().String()
		ln.Close()
		return addr, nil
	}
	oldAddrs := make([]string, rsOldN)
	rc.oldHTTP = make([]string, rsOldN)
	for i := range oldAddrs {
		var err error
		if oldAddrs[i], err = reserve(); err != nil {
			return nil, err
		}
		if rc.oldHTTP[i], err = reserve(); err != nil {
			return nil, err
		}
	}
	// Generation 1: old members 0..5 keep their addresses (the dial address
	// is a member's identity across generations); member 6 leaves; three
	// joiners take new-roster ids 6..8 on fresh ports.
	newAddrs := append([]string(nil), oldAddrs[:rsOldN-1]...)
	rc.newHTTP = append([]string(nil), rc.oldHTTP[:rsOldN-1]...)
	for len(newAddrs) < rsNewN {
		a, err := reserve()
		if err != nil {
			return nil, err
		}
		h, err := reserve()
		if err != nil {
			return nil, err
		}
		newAddrs = append(newAddrs, a)
		rc.newHTTP = append(rc.newHTTP, h)
	}

	roster := func(path string, addrs, https []string, generation int) error {
		var b strings.Builder
		fmt.Fprintf(&b, "cluster: rsoak\nsecret: %s\n", strings.Repeat("cd", 32))
		fmt.Fprintf(&b, "t: %d\nk: 32\nbatch: 40\nthreshold: 6\nseedcoins: %d\n", 1, rsSeeds)
		if generation > 0 {
			fmt.Fprintf(&b, "generation: %d\n", generation)
		}
		b.WriteString("peers:\n")
		for i, a := range addrs {
			fmt.Fprintf(&b, "  - id: %d\n    addr: %s\n    http: %s\n", i, a, https[i])
		}
		return os.WriteFile(path, []byte(b.String()), 0o644)
	}
	rc.g0 = filepath.Join(base, "peers-g0.yaml")
	rc.g1 = filepath.Join(base, "peers-g1.yaml")
	rc.g2 = filepath.Join(base, "peers-g2.yaml")
	if err := roster(rc.g0, oldAddrs, rc.oldHTTP, 0); err != nil {
		return nil, err
	}
	if err := roster(rc.g1, newAddrs, rc.newHTTP, 1); err != nil {
		return nil, err
	}
	if err := roster(rc.g2, newAddrs, rc.newHTTP, 2); err != nil {
		return nil, err
	}

	if out, err := exec.Command(bin, "-deal", "-config", rc.g0, "-data", dealDir,
		"-insecure-rand", "-rng-seed", fmt.Sprint(*seed)).CombinedOutput(); err != nil {
		return nil, fmt.Errorf("ceremony: %v\n%s", err, out)
	}

	// One state directory per machine, as deployed: stayers keep theirs
	// across generations, joiners start from an empty one.
	rc.oldDirs = make([]string, rsOldN)
	for i := range rc.oldDirs {
		rc.oldDirs[i] = filepath.Join(base, fmt.Sprintf("node-%d", i))
		if err := rsScatter(dealDir, rc.oldDirs[i], i); err != nil {
			return nil, err
		}
	}
	rc.newDirs = append([]string(nil), rc.oldDirs[:rsOldN-1]...)
	for j := rsOldN - 1; j < rsNewN; j++ {
		d := filepath.Join(base, fmt.Sprintf("joiner-%d", j))
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
		rc.newDirs = append(rc.newDirs, d)
	}
	return rc, nil
}

// runHandover is phase H: arm the old committee, SIGKILL the leaver while
// the reshare is in flight, attach the joiners, and scrape the reshare
// metrics off a lingering stayer. Returns the handover cutover.
func (rc *rsCluster) runHandover(bin, ctl string) (int, int, error) {
	// -join-timeout 40s: the ceremony's mesh window is half of it. Entry is
	// skewed by up to a second or two between the stayers' exit-quorum
	// polls and the joiners' process startup, which the window absorbs
	// easily. A full mesh ends the wait early; only the dead leaver makes
	// participants sit out the whole window.
	procs := make([]*exec.Cmd, rsOldN)
	for i := 0; i < rsOldN; i++ {
		cmd, err := rsLaunch(bin, rc.logDir, fmt.Sprintf("handover-%d", i),
			"-player", fmt.Sprint(i), "-config", rc.g0, "-data", rc.oldDirs[i],
			"-emit", "0", "-emit-interval", interval.String(),
			"-round-timeout", "2s", "-dial-backoff", "250ms", "-join-timeout", "40s",
			"-reshare", rc.g1, "-reshare-linger", "10s",
			"-insecure-rand", "-rng-seed", fmt.Sprint(*seed), "-addr", rc.oldHTTP[i])
		if err != nil {
			return 0, 0, err
		}
		procs[i] = cmd
	}

	// Let the committee arm and start emitting, then check the operator's
	// view: every row must carry a reshare flag.
	if err := rsWaitLogLines(rsCoinLog(rc.oldDirs[rsLeaver], rsLeaver), 2, 60*time.Second); err != nil {
		return 0, 0, err
	}
	out, err := exec.Command(ctl, "status", "-config", rc.g0, "-lag", "5").CombinedOutput()
	if err != nil {
		return 0, 0, fmt.Errorf("beaconctl status while armed: %v\n%s", err, out)
	}
	if got := strings.Count(string(out), "reshare"); got < rsOldN {
		return 0, 0, fmt.Errorf("beaconctl flagged only %d/%d armed daemons:\n%s", got, rsOldN, out)
	}
	fmt.Printf("soak: beaconctl shows all %d daemons armed for the handover\n", rsOldN)

	// SIGKILL the leaving member mid-reshare, but only once EVERY daemon is
	// paused at the committed cutover. A kill before the pause stalls the
	// survivors for ~20s while they demote the dead peer to mint the coins
	// up to the cutover — and that stall staggers their ceremony entries
	// past each other's per-attempt mesh windows. Paused, they hold no
	// in-flight round: the exit quorum closes on the surviving six alone
	// and everyone crosses into the ceremony within a poll cycle.
	if err := rsWaitAllPaused(rc.oldHTTP, 60*time.Second); err != nil {
		return 0, 0, err
	}
	if err := procs[rsLeaver].Process.Kill(); err != nil {
		return 0, 0, err
	}
	procs[rsLeaver].Wait()
	fmt.Printf("soak: SIGKILLed leaving member %d mid-reshare\n", rsLeaver)

	// Attach the joiners immediately; the stayers enter the ceremony within
	// about a second, so both sides open the same attempt's mesh (the
	// per-attempt cluster label rejects everything else).
	joiners := make([]*exec.Cmd, 0, rsNewN-rsOldN+1)
	for j := rsOldN - 1; j < rsNewN; j++ {
		cmd, err := rsLaunch(bin, rc.logDir, fmt.Sprintf("join-%d", j),
			"-reshare-join", fmt.Sprint(j), "-config", rc.g0, "-reshare", rc.g1,
			"-data", rc.newDirs[j], "-round-timeout", "2s", "-join-timeout", "40s",
			"-insecure-rand", "-rng-seed", fmt.Sprint(*seed))
		if err != nil {
			return 0, 0, err
		}
		joiners = append(joiners, cmd)
	}

	// The ceremony metrics must be scrapeable: a stayer lingers after the
	// handover, and its counter must show one successful attempt.
	if err := rsWaitMetric(rc.oldHTTP[0], "beacond_reshare_attempts_total", 1, 120*time.Second,
		"result", "ok"); err != nil {
		return 0, 0, fmt.Errorf("reshare metrics never appeared on stayer 0: %w", err)
	}
	fmt.Printf("soak: scraped beacond_reshare_attempts_total{result=\"ok\"} off the lingering stayer\n")

	for i, cmd := range procs {
		if i == rsLeaver {
			continue
		}
		if err := cmd.Wait(); err != nil {
			return 0, 0, fmt.Errorf("stayer %d exited: %w (see %s)", i, err, rsLogPath(rc.logDir, fmt.Sprintf("handover-%d", i)))
		}
	}
	for j, cmd := range joiners {
		if err := cmd.Wait(); err != nil {
			return 0, 0, fmt.Errorf("joiner %d exited: %w (see %s)", rsOldN-1+j, err, rsLogPath(rc.logDir, fmt.Sprintf("join-%d", rsOldN-1+j)))
		}
	}

	// The ceremony rewrote every continuing member's log truncated at the
	// cutover; its length IS the negotiated position. The succeeded attempt
	// number (from the stayer's log) tells how many tail coins were burned:
	// attempt a consumes store positions cutover+2a and cutover+2a+1, so
	// the new committee resumes at the old committee's coin cut+2(a+1).
	vals, err := rsCoinValues(rsCoinLog(rc.newDirs[0], 0))
	if err != nil {
		return 0, 0, err
	}
	if len(vals) < 1 || len(vals) > 12 {
		return 0, 0, fmt.Errorf("implausible handover cutover %d", len(vals))
	}
	attempt, err := rsParseAttempt(rsLogPath(rc.logDir, "handover-0"))
	if err != nil {
		return 0, 0, err
	}
	return len(vals), attempt, nil
}

// runCommittee launches the full new-roster committee against cfg, waits
// for the emit target, and asserts the generation gauge mid-run.
func (rc *rsCluster) runCommittee(bin, cfg string, emitTarget, wantGen int) error {
	tag := fmt.Sprintf("g%d", wantGen)
	procs := make([]*exec.Cmd, rsNewN)
	for i := 0; i < rsNewN; i++ {
		cmd, err := rsLaunch(bin, rc.logDir, fmt.Sprintf("%s-%d", tag, i),
			"-player", fmt.Sprint(i), "-config", cfg, "-data", rc.newDirs[i],
			"-emit", fmt.Sprint(emitTarget), "-emit-interval", interval.String(),
			"-round-timeout", "2s", "-dial-backoff", "250ms",
			"-insecure-rand", "-rng-seed", fmt.Sprint(*seed), "-addr", rc.newHTTP[i])
		if err != nil {
			return err
		}
		procs[i] = cmd
	}
	// As soon as each daemon's exposition is up it must report the new
	// committee generation (scraped before the short run can finish).
	for i, addr := range rc.newHTTP {
		if err := rsWaitMetric(addr, "beacond_generation", float64(wantGen), 30*time.Second); err != nil {
			return fmt.Errorf("player %d generation gauge: %w", i, err)
		}
	}
	for i, cmd := range procs {
		if err := cmd.Wait(); err != nil {
			return fmt.Errorf("player %d exited: %w (see %s)", i, err, rsLogPath(rc.logDir, fmt.Sprintf("%s-%d", tag, i)))
		}
	}
	return nil
}

// runReference replays the ORIGINAL generation-0 committee from a pristine
// copy of the deal output, uninterrupted, to rsEmitG1+6 coins (enough to
// cover the tail burned by up to 3 handover attempts).
func (rc *rsCluster) runReference(bin string) error {
	dirs := make([]string, rsOldN)
	for i := range dirs {
		dirs[i] = filepath.Join(rc.base, fmt.Sprintf("ref-%d", i))
		if err := rsScatter(filepath.Join(rc.base, "deal"), dirs[i], i); err != nil {
			return err
		}
	}
	procs := make([]*exec.Cmd, rsOldN)
	for i := 0; i < rsOldN; i++ {
		cmd, err := rsLaunch(bin, rc.logDir, fmt.Sprintf("ref-%d", i),
			"-player", fmt.Sprint(i), "-config", rc.g0, "-data", dirs[i],
			"-emit", fmt.Sprint(rsEmitG1+6), "-emit-interval", interval.String(),
			"-round-timeout", "2s", "-dial-backoff", "250ms",
			"-insecure-rand", "-rng-seed", fmt.Sprint(*seed), "-addr", rc.oldHTTP[i])
		if err != nil {
			return err
		}
		procs[i] = cmd
	}
	for i, cmd := range procs {
		if err := cmd.Wait(); err != nil {
			return fmt.Errorf("reference player %d exited: %w (see %s)", i, err, rsLogPath(rc.logDir, fmt.Sprintf("ref-%d", i)))
		}
	}
	return nil
}

// runRefresh is phase B: the generation-1 committee hands over to the
// identical generation-2 roster (a pure proactive share refresh).
func (rc *rsCluster) runRefresh(bin string) (int, error) {
	procs := make([]*exec.Cmd, rsNewN)
	for i := 0; i < rsNewN; i++ {
		cmd, err := rsLaunch(bin, rc.logDir, fmt.Sprintf("refresh-%d", i),
			"-player", fmt.Sprint(i), "-config", rc.g1, "-data", rc.newDirs[i],
			"-emit", "0", "-emit-interval", interval.String(),
			"-round-timeout", "2s", "-dial-backoff", "250ms", "-join-timeout", "40s",
			"-reshare", rc.g2,
			"-insecure-rand", "-rng-seed", fmt.Sprint(*seed+1), "-addr", rc.newHTTP[i])
		if err != nil {
			return 0, err
		}
		procs[i] = cmd
	}
	for i, cmd := range procs {
		if err := cmd.Wait(); err != nil {
			return 0, fmt.Errorf("refresh player %d exited: %w (see %s)", i, err, rsLogPath(rc.logDir, fmt.Sprintf("refresh-%d", i)))
		}
	}
	vals, err := rsCoinValues(rsCoinLog(rc.newDirs[0], 0))
	if err != nil {
		return 0, err
	}
	if len(vals) < rsEmitG1 {
		return 0, fmt.Errorf("refresh cutover %d is before the generation-1 emit target %d", len(vals), rsEmitG1)
	}
	return len(vals), nil
}

// checkLogsIdentical asserts all rsNewN public logs hold exactly want
// coins and are byte-identical.
func (rc *rsCluster) checkLogsIdentical(want int) error {
	ref, err := os.ReadFile(rsCoinLog(rc.newDirs[0], 0))
	if err != nil {
		return err
	}
	if got := strings.Count(string(ref), "\n"); got != want {
		return fmt.Errorf("player 0 holds %d coins, want %d", got, want)
	}
	for i := 1; i < rsNewN; i++ {
		b, err := os.ReadFile(rsCoinLog(rc.newDirs[i], i))
		if err != nil {
			return err
		}
		if string(b) != string(ref) {
			return fmt.Errorf("player %d's log differs from player 0's", i)
		}
	}
	return nil
}

// --- small process/file helpers, local to the reshare leg ---

func rsLogPath(logDir, tag string) string {
	return filepath.Join(logDir, tag+".log")
}

// rsLaunch starts one beacond process with stdout+stderr appended to a
// per-process log file under logDir.
func rsLaunch(bin, logDir, tag string, args ...string) (*exec.Cmd, error) {
	cmd := exec.Command(bin, args...)
	f, err := os.OpenFile(rsLogPath(logDir, tag), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if *verbose {
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	} else {
		cmd.Stdout, cmd.Stderr = f, f
	}
	if err := cmd.Start(); err != nil {
		f.Close()
		return nil, err
	}
	return cmd, nil
}

func rsCoinLog(dir string, player int) string {
	return filepath.Join(dir, fmt.Sprintf("player-%03d.coins", player))
}

// rsScatter copies player id's dealt state files (store + meta) from the
// ceremony output into the member's own state directory.
func rsScatter(dealDir, dst string, id int) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	for _, ext := range []string{"store", "meta"} {
		name := fmt.Sprintf("player-%03d.%s", id, ext)
		b, err := os.ReadFile(filepath.Join(dealDir, name))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, name), b, 0o600); err != nil {
			return err
		}
	}
	return nil
}

// rsWaitAllPaused polls every daemon's /v1/healthz until each reports an
// armed reshare with a committed cutover AND a public log that has reached
// it — the paused-at-cutover state mid-handover.
func rsWaitAllPaused(httpAddrs []string, timeout time.Duration) error {
	client := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(timeout)
	var lastState string
	for time.Now().Before(deadline) {
		paused := 0
		lastState = ""
		for _, addr := range httpAddrs {
			var hz struct {
				Log     int  `json:"log"`
				Armed   bool `json:"armed"`
				Cutover int  `json:"cutover"`
			}
			resp, err := client.Get("http://" + addr + "/v1/healthz")
			if err != nil {
				lastState += fmt.Sprintf("%s: %v; ", addr, err)
				continue
			}
			err = json.NewDecoder(resp.Body).Decode(&hz)
			resp.Body.Close()
			if err != nil {
				lastState += fmt.Sprintf("%s: %v; ", addr, err)
				continue
			}
			if hz.Armed && hz.Cutover >= 0 && hz.Log == hz.Cutover {
				paused++
			} else {
				lastState += fmt.Sprintf("%s: armed=%t cutover=%d log=%d; ", addr, hz.Armed, hz.Cutover, hz.Log)
			}
		}
		if paused == len(httpAddrs) {
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("cluster never paused at the cutover within %v (%s)", timeout, lastState)
}

// rsParseAttempt extracts the succeeded ceremony attempt number from a
// stayer's "handover complete: ... attempt N)" log line.
func rsParseAttempt(path string) (int, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(b), "\n") {
		idx := strings.LastIndex(line, "attempt ")
		if !strings.Contains(line, "handover complete") || idx < 0 {
			continue
		}
		var a int
		if _, err := fmt.Sscanf(line[idx:], "attempt %d", &a); err == nil {
			return a, nil
		}
	}
	return 0, fmt.Errorf("%s carries no \"handover complete ... attempt N\" line", path)
}

func rsWaitLogLines(path string, want int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(path); err == nil && strings.Count(string(b), "\n") >= want {
			return nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("%s never reached %d coins within %v", path, want, timeout)
}

// rsCoinValues parses a public coin log into its hex value column (the
// positions differ between a pre- and post-handover log only in count, so
// comparisons are by value).
func rsCoinValues(path string) ([]string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var vals []string
	for _, line := range strings.Split(strings.TrimSpace(string(b)), "\n") {
		if line == "" {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 2 {
			return nil, fmt.Errorf("%s: malformed log line %q", path, line)
		}
		vals = append(vals, f[1])
	}
	return vals, nil
}

// rsWaitMetric polls addr's /metrics until the named series (optionally
// narrowed by label pairs) reaches at least want.
func rsWaitMetric(addr, name string, want float64, timeout time.Duration, kv ...string) error {
	client := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(timeout)
	var last float64
	for time.Now().Before(deadline) {
		resp, err := client.Get("http://" + addr + "/metrics")
		if err == nil {
			samples, perr := prom.ParseText(resp.Body)
			resp.Body.Close()
			if perr == nil {
				if v, ok := prom.Value(samples, name, kv...); ok {
					last = v
					if v >= want {
						return nil
					}
				}
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("%s%v on %s never reached %v (last %v)", name, kv, addr, want, last)
}

func rsFileHash(path string) (string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", sha256.Sum256(b)), nil
}
