package baseline

import (
	"fmt"
	"io"
	"math/big"

	"repro/internal/metrics"
	"repro/internal/simnet"
)

// Feldman's VSS [12] over a 1024-bit prime field, as cited in §1.4: "he
// achieves O(n) communication and O(n² log³ p) computation" under the
// discrete-log assumption, with "both the dealer and the players [having]
// to carry out t exponentiations". Implemented here purely as a cost
// comparator for experiment E11.
//
// The group is the order-q subgroup of Z_p^* for the 1024-bit safe prime p
// of RFC 2409 (Oakley group 2), generator 4 (a quadratic residue, so it
// generates the order-q subgroup with q = (p−1)/2). Shamir sharing is over
// Z_q; commitments are g^{a_j} mod p.

// oakley2Hex is the 1024-bit safe prime of RFC 2409 §6.2.
const oakley2Hex = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74" +
	"020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437" +
	"4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED" +
	"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF"

// FeldmanGroup holds the group parameters (build once with NewFeldmanGroup).
type FeldmanGroup struct {
	P, Q, G *big.Int
}

// NewFeldmanGroup returns the Oakley-group-2 parameters.
func NewFeldmanGroup() (*FeldmanGroup, error) {
	p, ok := new(big.Int).SetString(oakley2Hex, 16)
	if !ok {
		return nil, fmt.Errorf("baseline: bad prime constant")
	}
	q := new(big.Int).Rsh(new(big.Int).Sub(p, big.NewInt(1)), 1)
	return &FeldmanGroup{P: p, Q: q, G: big.NewInt(4)}, nil
}

// FeldmanConfig parameterizes a Feldman VSS ceremony.
type FeldmanConfig struct {
	Group *FeldmanGroup
	// N, T: players and fault bound.
	N, T int
	// Counters records communication when non-nil. Computation is measured
	// by the caller in wall-clock time (big.Int exponentiations dominate).
	Counters *metrics.Counters
}

// FeldmanVSS runs one dealer's non-interactive verifiable sharing: the
// dealer broadcasts t+1 coefficient commitments and sends each player its
// share; each player verifies g^{share} = Π C_j^{i^j} (t+1 exponentiations)
// and broadcasts accept/complain; the sharing is accepted with ≤ t
// complaints. Returns this player's verdict and share. Consumes two rounds.
func FeldmanVSS(nd *simnet.Node, cfg FeldmanConfig, dealer int, secret *big.Int, rnd io.Reader) (bool, *big.Int, error) {
	if cfg.N < 3*cfg.T+1 {
		return false, nil, fmt.Errorf("baseline: need n ≥ 3t+1, got n=%d t=%d", cfg.N, cfg.T)
	}
	grp := cfg.Group
	me := nd.Index()

	// Round 1: dealer broadcasts commitments and unicasts shares.
	var myShare *big.Int
	if me == dealer {
		coeffs := make([]*big.Int, cfg.T+1)
		coeffs[0] = new(big.Int).Mod(secret, grp.Q)
		for j := 1; j <= cfg.T; j++ {
			c, err := randScalar(grp.Q, rnd)
			if err != nil {
				return false, nil, err
			}
			coeffs[j] = c
		}
		var commitBuf []byte
		for _, c := range coeffs {
			commit := new(big.Int).Exp(grp.G, c, grp.P)
			commitBuf = appendBig(commitBuf, commit)
		}
		nd.Broadcast(commitBuf)
		for i := 0; i < cfg.N; i++ {
			share := evalPoly(coeffs, int64(i+1), grp.Q)
			if i == me {
				myShare = share
				continue
			}
			nd.Send(i, appendBig(nil, share))
		}
	}
	msgs, err := nd.EndRound()
	if err != nil {
		return false, nil, err
	}

	var commits []*big.Int
	for _, m := range msgs {
		if m.From != dealer {
			continue
		}
		if m.Kind == simnet.Broadcast {
			commits, _ = readBigs(m.Payload, cfg.T+1)
		} else if me != dealer {
			if s, rest := readBig(m.Payload); len(rest) == 0 {
				myShare = s
			}
		}
	}

	// Local verification: g^share = Π C_j^{(i+1)^j}.
	ok := commits != nil && myShare != nil
	if ok {
		lhs := new(big.Int).Exp(grp.G, myShare, grp.P)
		rhs := big.NewInt(1)
		x := big.NewInt(int64(me + 1))
		xj := big.NewInt(1)
		for _, c := range commits {
			rhs.Mul(rhs, new(big.Int).Exp(c, xj, grp.P))
			rhs.Mod(rhs, grp.P)
			xj = new(big.Int).Mul(xj, x)
		}
		ok = lhs.Cmp(rhs) == 0
	}

	// Round 2: complaints.
	if ok {
		nd.Broadcast([]byte{0})
	} else {
		nd.Broadcast([]byte{1})
	}
	msgs, err = nd.EndRound()
	if err != nil {
		return false, nil, err
	}
	complaints := 0
	responses := 0
	for _, payload := range simnet.FirstFromEach(msgs) {
		responses++
		if len(payload) != 1 || payload[0] != 0 {
			complaints++
		}
	}
	complaints += nd.N() - responses // silence counts as a complaint
	return complaints <= cfg.T, myShare, nil
}

func randScalar(q *big.Int, rnd io.Reader) (*big.Int, error) {
	buf := make([]byte, (q.BitLen()+15)/8) // extra byte: negligible bias
	if _, err := io.ReadFull(rnd, buf); err != nil {
		return nil, err
	}
	return new(big.Int).Mod(new(big.Int).SetBytes(buf), q), nil
}

func evalPoly(coeffs []*big.Int, x int64, q *big.Int) *big.Int {
	acc := new(big.Int)
	bx := big.NewInt(x)
	for j := len(coeffs) - 1; j >= 0; j-- {
		acc.Mul(acc, bx)
		acc.Add(acc, coeffs[j])
		acc.Mod(acc, q)
	}
	return acc
}

func appendBig(dst []byte, v *big.Int) []byte {
	b := v.Bytes()
	dst = append(dst, byte(len(b)), byte(len(b)>>8))
	return append(dst, b...)
}

func readBig(src []byte) (*big.Int, []byte) {
	if len(src) < 2 {
		return nil, nil
	}
	l := int(src[0]) | int(src[1])<<8
	src = src[2:]
	if l > len(src) {
		return nil, nil
	}
	return new(big.Int).SetBytes(src[:l]), src[l:]
}

func readBigs(src []byte, count int) ([]*big.Int, []byte) {
	out := make([]*big.Int, 0, count)
	for i := 0; i < count; i++ {
		var v *big.Int
		v, src = readBig(src)
		if v == nil {
			return nil, nil
		}
		out = append(out, v)
	}
	return out, src
}
