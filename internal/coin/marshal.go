package coin

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/gf2k"
)

// Batch serialization, for the paper's §1.2 usage pattern: "the generator
// is run to produce as many coins as the current execution of the
// application needs, plus another (distributed) seed. The new seed is
// stored until the next execution of the application." Each player persists
// its own batch (the shares are that player's secrets — treat the bytes as
// sensitive) and restores it in the next session.

const (
	batchMagic = "DPRBGv1\x00"
	// storeMagicV1 framed the batches alone; the universe binding was
	// "configuration, not state" and had to be re-established with
	// BindUniverse after restoring. That made a store restored under the
	// wrong roster indistinguishable from a correct one until exposures
	// desynced. storeMagicV2 persists the binding (and the reshare
	// generation) so Resume rejects the mismatch up front. v1 blobs still
	// load, with an unbound universe and generation 0.
	storeMagicV1 = "DPRBGs1\x00"
	storeMagicV2 = "DPRBGs2\x00"
)

var (
	errBadBatchEncoding = errors.New("coin: malformed batch encoding")
	errBadStoreEncoding = errors.New("coin: malformed store encoding")
)

// MarshalBinary serializes the batch, including the exposure cursor, so a
// restored batch resumes exactly where it left off.
func (b *Batch) MarshalBinary() ([]byte, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	buf := make([]byte, 0, len(batchMagic)+16+4*len(b.S)+len(b.Shares)*b.Field.ByteLen())
	buf = append(buf, batchMagic...)
	buf = append(buf, byte(b.Field.K()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(b.T))
	if b.Silent {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.S)))
	for _, idx := range b.S {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(idx))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.Shares)))
	buf = b.Field.AppendElements(buf, b.Shares)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(b.next))
	return buf, nil
}

// UnmarshalBatch restores a batch serialized with MarshalBinary,
// reconstructing the field from the stored extension degree.
func UnmarshalBatch(data []byte) (*Batch, error) {
	if len(data) < len(batchMagic)+10 || string(data[:len(batchMagic)]) != batchMagic {
		return nil, errBadBatchEncoding
	}
	data = data[len(batchMagic):]
	k := int(data[0])
	field, err := gf2k.New(k)
	if err != nil {
		return nil, fmt.Errorf("coin: restore field: %w", err)
	}
	t := int(binary.LittleEndian.Uint32(data[1:]))
	silent := data[5] != 0
	sLen := int(binary.LittleEndian.Uint32(data[6:]))
	data = data[10:]
	if t < 0 || sLen < 0 || sLen > 1<<16 || len(data) < 4*sLen+4 {
		return nil, errBadBatchEncoding
	}
	s := make([]int, sLen)
	for i := range s {
		s[i] = int(binary.LittleEndian.Uint32(data[4*i:]))
	}
	data = data[4*sLen:]
	shareCount := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	if shareCount < 0 || shareCount > 1<<24 {
		return nil, errBadBatchEncoding
	}
	shares, rest, err := field.ReadElements(data, shareCount)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errBadBatchEncoding, err)
	}
	if len(rest) != 4 {
		return nil, errBadBatchEncoding
	}
	next := int(binary.LittleEndian.Uint32(rest))
	if next < 0 || next > shareCount {
		return nil, errBadBatchEncoding
	}
	b := &Batch{
		Field:  field,
		T:      t,
		S:      s,
		Shares: shares,
		Silent: silent,
		next:   next,
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// MarshalBinary serializes the whole store — every batch, in FIFO order,
// each with its own cursor — as a sequence of length-prefixed Batch
// encodings, preceded by the universe binding and the reshare generation.
// This is the beacon's shutdown format: a restored store resumes exposures
// exactly where it stopped, so the trusted dealer is never consulted again
// (§1.2's "the new seed is stored until the next execution of the
// application"). Because the universe is persisted, BindUniverse on a
// restored store rejects a different roster size instead of silently
// rebinding; a legitimate committee change goes through RebindUniverse (the
// internal/reshare migration path).
func (s *Store) MarshalBinary() ([]byte, error) {
	if s.Universe < 0 || s.Generation < 0 {
		return nil, fmt.Errorf("coin: store universe %d / generation %d must not be negative", s.Universe, s.Generation)
	}
	buf := append([]byte(nil), storeMagicV2...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.Universe))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.Generation))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.batches)))
	for _, b := range s.batches {
		enc, err := b.MarshalBinary()
		if err != nil {
			return nil, err
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(enc)))
		buf = append(buf, enc...)
	}
	return buf, nil
}

// UnmarshalStore restores a store serialized with Store.MarshalBinary —
// either the current v2 encoding (universe + generation + batches) or the
// legacy v1 encoding (batches only; the universe comes back unbound and the
// generation zero, exactly the pre-resharing semantics those blobs were
// written under). The batches pass the same structural-compatibility checks
// Add enforces, so a corrupted or mixed-up file fails here instead of
// desyncing exposures.
func UnmarshalStore(data []byte) (*Store, error) {
	s := &Store{}
	switch {
	case len(data) >= len(storeMagicV2)+12 && string(data[:len(storeMagicV2)]) == storeMagicV2:
		data = data[len(storeMagicV2):]
		s.Universe = int(binary.LittleEndian.Uint32(data))
		s.Generation = int(binary.LittleEndian.Uint32(data[4:]))
		data = data[8:]
		if s.Universe < 0 || s.Universe > 1<<20 || s.Generation < 0 || s.Generation > 1<<20 {
			return nil, errBadStoreEncoding
		}
	case len(data) >= len(storeMagicV1)+4 && string(data[:len(storeMagicV1)]) == storeMagicV1:
		data = data[len(storeMagicV1):]
	default:
		return nil, errBadStoreEncoding
	}
	count := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	if count < 0 || count > 1<<16 {
		return nil, errBadStoreEncoding
	}
	for i := 0; i < count; i++ {
		if len(data) < 4 {
			return nil, errBadStoreEncoding
		}
		bLen := int(binary.LittleEndian.Uint32(data))
		data = data[4:]
		if bLen < 0 || bLen > len(data) {
			return nil, errBadStoreEncoding
		}
		b, err := UnmarshalBatch(data[:bLen])
		if err != nil {
			return nil, fmt.Errorf("coin: store batch %d: %w", i, err)
		}
		if err := s.Add(b); err != nil {
			return nil, fmt.Errorf("coin: store batch %d: %w", i, err)
		}
		data = data[bLen:]
	}
	if len(data) != 0 {
		return nil, errBadStoreEncoding
	}
	return s, nil
}
