package conformance

import (
	"bytes"
	"fmt"

	"repro/internal/adversary"
	"repro/internal/gradecast"
	"repro/internal/simnet"
)

// GradeCastOutcome is the result of one Grade-Cast conformance scenario:
// every player grade-casts a value in n simultaneous instances, with the
// attack corrupting a subset of senders (in code or in the message layer).
type GradeCastOutcome struct {
	Env             *env
	Corrupt, Honest []int
	// Outputs[i][d] is honest player i's graded output for dealer d.
	Outputs map[int][]gradecast.Output
}

// gcValue is the value player i honestly grade-casts.
func gcValue(i int) []byte { return []byte{byte(0x40 + i)} }

// gcAttacker is the corrupted sender in every Grade-Cast scenario. It is a
// non-zero index so instance 0 always doubles as an honest control
// instance.
const gcAttacker = 1

// RunGradeCast executes one Grade-Cast conformance scenario over the
// 3-round RunAll ceremony (dissemination at round 0, echoes at rounds 1-2).
func RunGradeCast(sc Scenario) (*GradeCastOutcome, error) {
	out := &GradeCastOutcome{Outputs: map[int][]gradecast.Output{}}

	var ic simnet.Interceptor
	half := make([]int, 0, sc.N/2)
	for i := 0; i < sc.N; i++ {
		if i != gcAttacker && len(half) < sc.N/2 {
			half = append(half, i)
		}
	}
	switch sc.Attack {
	case "honest", "silent-sender", "crash-sender":
		// player-level; handled below
	case "grade-split-half":
		// Half the players see an alternative value: neither value reaches
		// the n−t echo threshold, so the instance must degrade to grade 0
		// everywhere rather than split.
		out.Corrupt = []int{gcAttacker}
		ic = adversary.GradeCastSplitter(gcAttacker, 0, half, []byte{0xEB})
	case "grade-split-one":
		// A single victim sees the alternative: the echo rounds must pull
		// it back to the majority value with full confidence.
		out.Corrupt = []int{gcAttacker}
		ic = adversary.GradeCastSplitter(gcAttacker, 0, half[:1], []byte{0xEB})
	case "echo-liar":
		// Honest dissemination, garbled echoes.
		out.Corrupt = []int{gcAttacker}
		ic = adversary.GradeCastEchoLiar(gcAttacker, 0, sc.Seed)
	default:
		return nil, fmt.Errorf("conformance: unknown gradecast attack %q", sc.Attack)
	}

	e, err := newEnv(sc, ic, 0)
	if err != nil {
		return nil, err
	}
	out.Env = e

	fns := make([]simnet.PlayerFunc, sc.N)
	for i := range fns {
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			return gradecast.RunAll(nd, sc.T, gcValue(nd.Index()))
		}
	}
	switch sc.Attack {
	case "silent-sender":
		out.Corrupt = []int{gcAttacker}
		fns[gcAttacker] = adversary.SilentFor(3, nil)
	case "crash-sender":
		out.Corrupt = []int{gcAttacker}
		fns[gcAttacker] = adversary.Crash()
	}

	out.Honest = sc.assertable(out.Corrupt)
	results := simnet.Run(e.nw, fns)
	if err := checkHonest(e, results, out.Honest); err != nil {
		return nil, err
	}
	for _, i := range out.Honest {
		outs, ok := results[i].Value.([]gradecast.Output)
		if !ok || len(outs) != sc.N {
			return nil, e.failf("player %d returned %T (%d instances), want %d gradecast outputs",
				i, results[i].Value, len(outs), sc.N)
		}
		out.Outputs[i] = outs
	}
	return out, nil
}

// Check asserts Grade-Cast's graded-consistency guarantees on every
// instance:
//
//  1. Honest dealers: every honest player outputs (value, confidence 2).
//  2. No 2-vs-0 split: if any honest player has confidence 2 for an
//     instance, every honest player has confidence ≥ 1.
//  3. Value agreement at positive grades: honest players with
//     confidence ≥ 1 for the same instance hold the same value.
func (o *GradeCastOutcome) Check() error {
	e := o.Env
	// "Corrupt" for assertion purposes is the complement of the assertable
	// honest set: attack-corrupted AND schedule-disturbed dealers only get
	// the graded-consistency guarantees (2-3), not the honest-dealer
	// exactness of (1) — a dealer whose dissemination the network delayed
	// legitimately lands below confidence 2.
	corrupt := map[int]bool{}
	for i := 0; i < e.sc.N; i++ {
		corrupt[i] = true
	}
	for _, i := range o.Honest {
		corrupt[i] = false
	}
	for d := 0; d < e.sc.N; d++ {
		if !corrupt[d] {
			for _, i := range o.Honest {
				got := o.Outputs[i][d]
				if got.Confidence != 2 || !bytes.Equal(got.Value, gcValue(d)) {
					return e.failf("honest dealer %d at player %d: got (%x, %d), want (%x, 2)",
						d, i, got.Value, got.Confidence, gcValue(d))
				}
			}
			continue
		}
		maxConf, minConf := 0, 2
		var refVal []byte
		for _, i := range o.Honest {
			got := o.Outputs[i][d]
			if got.Confidence > maxConf {
				maxConf = got.Confidence
			}
			if got.Confidence < minConf {
				minConf = got.Confidence
			}
			if got.Confidence >= 1 {
				if refVal == nil {
					refVal = got.Value
				} else if !bytes.Equal(refVal, got.Value) {
					return e.failf("instance %d: positive-grade values differ (%x vs %x)",
						d, refVal, got.Value)
				}
			}
		}
		if maxConf == 2 && minConf == 0 {
			return e.failf("instance %d: grades split 2-vs-0 across honest players", d)
		}
	}
	return nil
}
