// Package core implements the paper's headline object: the bootstrapped
// distributed pseudo-random bit generator (D-PRBG, §1.1–1.2 and Fig. 1).
//
// A Generator is one player's handle on a self-sustaining stream of sealed
// shared coins. It starts from a small trusted-dealer seed (O(1) sealed
// coins, obtained once — "the services of a trusted dealer would be used
// only once, and for a small number of coins"). Whenever the number of
// remaining sealed coins drops below a threshold, the generator runs
// Coin-Gen to mint a fresh batch of M coins, spending an expected constant
// number of remaining coins to do so — the bootstrap loop of Fig. 1: each
// batch produces "not only the coins for the current execution but also the
// seed for the next execution".
//
// All honest players drive their Generators in lockstep; the refill
// decision depends only on shared state (the count of exposed coins), so it
// fires at the same instant everywhere.
//
// Because every batch is generated from fresh polynomials dealt by the
// current clique, the faulty set may change arbitrarily between batches
// (the paper's pro-active setting, §1.2): no long-lived secret outlives a
// batch.
package core

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/ba"
	"repro/internal/coin"
	"repro/internal/coingen"
	"repro/internal/gf2k"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/simnet"
)

// DefaultThreshold is the refill trigger: a new batch is generated when
// fewer than this many sealed coins remain. It must cover Coin-Gen's own
// consumption (one challenge coin plus one coin per leader attempt); with
// t/n ≤ 1/6 the probability that a refill needs more than three leader
// draws is below 1/200.
const DefaultThreshold = 6

// Config parameterizes a D-PRBG.
type Config struct {
	// Field is GF(2^k): each coin is one element (a k-ary coin).
	Field gf2k.Field
	// N is the player count; T the fault bound; N ≥ 6T+1.
	N, T int
	// BatchSize is M, the number of sealed coins minted per Coin-Gen run.
	BatchSize int
	// Threshold triggers a refill when Remaining() < Threshold.
	// Defaults to DefaultThreshold. Must be ≤ BatchSize so refills make
	// net progress.
	Threshold int
	// HighWater, when > 0, is the proactive refill trigger used by serving
	// layers (internal/beacon): once Remaining() < HighWater, NeedsRefill
	// reports true so an out-of-band Coin-Gen can be started while clients
	// keep draining the current batch, long before the blocking Threshold
	// is reached. Must be ≥ Threshold. Zero disables the high-water mark
	// (NeedsRefill then falls back to Threshold).
	HighWater int
	// Agreement overrides the BA protocol used by Coin-Gen (optional).
	Agreement ba.Protocol
	// MaxAttempts bounds Coin-Gen leader retries (optional).
	MaxAttempts int
	// Counters, when non-nil, records all protocol costs.
	Counters *metrics.Counters
	// Pool, when non-nil, fans the pure-compute phases of refills and
	// exposures out across idle cores (see internal/parallel). Like
	// Counters, the pool is runtime-only: it propagates into every batch
	// the generator mints, absorbs, or restores, and is never serialized.
	Pool *parallel.Pool
}

func (c Config) withDefaults() Config {
	if c.Threshold == 0 {
		c.Threshold = DefaultThreshold
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Field.K() == 0 {
		return errors.New("core: config has no field (Field is the zero value; construct one with gf2k.New)")
	}
	if c.N < 6*c.T+1 {
		return fmt.Errorf("core: need n ≥ 6t+1, got n=%d t=%d", c.N, c.T)
	}
	if c.BatchSize < 1 {
		return fmt.Errorf("core: batch size must be ≥ 1, got %d", c.BatchSize)
	}
	if c.Threshold < 2 {
		return fmt.Errorf("core: threshold must be ≥ 2 (a refill itself consumes coins), got %d", c.Threshold)
	}
	if c.BatchSize <= c.Threshold {
		return fmt.Errorf("core: batch size %d must exceed threshold %d or refills cannot make progress",
			c.BatchSize, c.Threshold)
	}
	if c.HighWater != 0 && c.HighWater < c.Threshold {
		return fmt.Errorf("core: high-water mark %d below threshold %d would never fire ahead of demand",
			c.HighWater, c.Threshold)
	}
	return nil
}

// Stats summarizes a generator's lifetime activity.
type Stats struct {
	// CoinsDelivered counts coins handed to the application.
	CoinsDelivered int
	// Batches counts Coin-Gen refills.
	Batches int
	// SeedSpent counts coins consumed internally by refills.
	SeedSpent int
	// Attempts accumulates Coin-Gen leader-selection iterations.
	Attempts int
}

// Generator is one player's D-PRBG endpoint. Not safe for concurrent use;
// drive it from the player's protocol goroutine.
type Generator struct {
	cfg   Config
	store *coin.Store
	stats Stats
}

// SetupTrusted bootstraps n generators from a one-time trusted dealer that
// seals `seedCoins` initial coins (must be ≥ cfg.Threshold... at minimum
// enough to fund the first refill). This mirrors the paper's Rabin-style
// initialization; afterwards the system is self-sufficient.
func SetupTrusted(cfg Config, seedCoins int, rnd io.Reader) ([]*Generator, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if seedCoins < cfg.Threshold {
		return nil, fmt.Errorf("core: initial seed of %d coins is below threshold %d", seedCoins, cfg.Threshold)
	}
	batches, _, err := coin.DealTrusted(cfg.Field, cfg.N, cfg.T, seedCoins, rnd)
	if err != nil {
		return nil, err
	}
	gens := make([]*Generator, cfg.N)
	for i := range gens {
		st := &coin.Store{Universe: cfg.N}
		batches[i].Counters = cfg.Counters
		batches[i].Pool = cfg.Pool
		if err := st.Add(batches[i]); err != nil {
			return nil, err
		}
		gens[i] = &Generator{cfg: cfg, store: st}
	}
	return gens, nil
}

// NewFromBatch wraps an externally produced coin batch (e.g. from a prior
// session) as a generator. Every player must construct its generator from
// the matching per-player batch.
func NewFromBatch(cfg Config, b *coin.Batch) (*Generator, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	b.Pool = cfg.Pool
	st := &coin.Store{Universe: cfg.N}
	if err := st.Add(b); err != nil {
		return nil, err
	}
	return &Generator{cfg: cfg, store: st}, nil
}

// NewFromStore wraps a whole restored store (e.g. read back from disk via
// coin.UnmarshalStore after a beacon shutdown) as a generator. The store
// must hold at least 2 sealed coins — the minimum a refill needs to fund
// its challenge and first leader draw — or the restored system could never
// become self-sufficient and would need the trusted dealer again.
func NewFromStore(cfg Config, st *coin.Store) (*Generator, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if st == nil {
		return nil, errors.New("core: nil store")
	}
	if rem := st.Remaining(); rem < 2 {
		return nil, fmt.Errorf("core: restored store holds %d coins; need ≥ 2 to fund a refill without a dealer", rem)
	}
	if err := st.BindUniverse(cfg.N); err != nil {
		return nil, err
	}
	// Pools (like counters) are never serialized; re-attach to every
	// restored batch.
	for _, b := range st.Batches() {
		b.Pool = cfg.Pool
	}
	return &Generator{cfg: cfg, store: st}, nil
}

// Remaining reports the number of sealed coins currently in the store.
func (g *Generator) Remaining() int { return g.store.Remaining() }

// Stats returns a copy of the lifetime statistics.
func (g *Generator) Stats() Stats { return g.stats }

// Store returns the generator's coin store, for persistence (marshal every
// batch at shutdown) and out-of-band refill plumbing. The store must only
// be touched from the generator's protocol goroutine, or between protocol
// operations by whoever schedules them.
func (g *Generator) Store() *coin.Store { return g.store }

// NeedsRefill reports whether the store has dropped below the proactive
// high-water mark (or, with no high-water mark configured, below the
// blocking threshold). Serving layers poll this to start an out-of-band
// Coin-Gen before Next would ever have to block on one.
func (g *Generator) NeedsRefill() bool {
	hw := g.cfg.HighWater
	if hw == 0 {
		hw = g.cfg.Threshold
	}
	return g.store.Remaining() < hw
}

// Next returns the next shared coin, refilling first when the store has
// dropped below the threshold. Every honest player obtains the same value.
func (g *Generator) Next(nd *simnet.Node, rnd io.Reader) (gf2k.Element, error) {
	if err := g.maybeRefill(nd, rnd); err != nil {
		return 0, err
	}
	e, err := g.store.Expose(nd)
	if err != nil {
		return 0, err
	}
	g.stats.CoinsDelivered++
	return e, nil
}

// NextBit returns the next shared coin reduced to a single bit.
func (g *Generator) NextBit(nd *simnet.Node, rnd io.Reader) (byte, error) {
	e, err := g.Next(nd, rnd)
	if err != nil {
		return 0, err
	}
	return byte(e & 1), nil
}

// NextMod returns the next shared coin reduced mod m into [1, m].
func (g *Generator) NextMod(nd *simnet.Node, rnd io.Reader, m int) (int, error) {
	if m <= 0 {
		return 0, fmt.Errorf("core: invalid modulus %d", m)
	}
	e, err := g.Next(nd, rnd)
	if err != nil {
		return 0, err
	}
	l := int(uint64(e) % uint64(m))
	if l == 0 {
		l = m
	}
	return l, nil
}

// Expose reveals the next sealed coin with no refill check — the entry
// point for serving layers (internal/beacon) that schedule refills
// themselves, ahead of demand. When the store is dry it returns
// coin.ErrExhausted without consuming a network round, so all honest
// players stay in lockstep even on the error path.
func (g *Generator) Expose(nd *simnet.Node) (gf2k.Element, error) {
	e, err := g.store.Expose(nd)
	if err != nil {
		return 0, err
	}
	g.stats.CoinsDelivered++
	return e, nil
}

// DetachSeed carves the `count` newest sealed coins out of the store as a
// standalone seed for an out-of-band refill (core.Mint on a separate
// network), leaving the older coins behind for the serving path to keep
// draining. count must be ≥ 2 (a Coin-Gen spends one challenge coin plus at
// least one leader draw) and must leave at least Threshold coins behind so
// the serving path retains its own emergency refill budget.
func (g *Generator) DetachSeed(count int) (*coin.Store, error) {
	if count < 2 {
		return nil, fmt.Errorf("core: a detached seed of %d coins cannot fund a refill (need ≥ 2)", count)
	}
	if keep := g.store.Remaining() - count; keep < g.cfg.Threshold {
		return nil, fmt.Errorf("core: detaching %d of %d coins would leave %d, below threshold %d",
			count, g.store.Remaining(), keep, g.cfg.Threshold)
	}
	return g.store.DetachTail(count)
}

// MintResult is one player's outcome of an out-of-band Coin-Gen run.
type MintResult struct {
	// Batch holds the BatchSize new sealed coins.
	Batch *coin.Batch
	// Attempts is the number of leader-selection iterations used.
	Attempts int
	// SeedConsumed counts the sealed coins spent from the seed source.
	SeedConsumed int
}

// Mint runs one Coin-Gen funded by the supplied seed source, returning the
// minted batch without touching any Generator. This is the non-blocking
// refill entry point: a serving layer detaches a seed (DetachSeed), runs
// Mint for every player on a dedicated network while exposures continue on
// the serving network, and later hands the results back with Absorb once
// the serving side is quiescent.
func Mint(cfg Config, nd *simnet.Node, seed coin.Source, rnd io.Reader) (*MintResult, error) {
	cfg = cfg.withDefaults()
	sp := nd.Tracer().Start(nd.Index(), nd.Round(), obs.KindProtocol, "core/refill")
	defer func() { sp.End(nd.Round()) }()
	res, err := coingen.Run(nd, coingen.Config{
		Field:       cfg.Field,
		N:           cfg.N,
		T:           cfg.T,
		M:           cfg.BatchSize,
		Seed:        seed,
		Agreement:   cfg.Agreement,
		MaxAttempts: cfg.MaxAttempts,
		Counters:    cfg.Counters,
		Pool:        cfg.Pool,
	}, rnd)
	if err != nil {
		if errors.Is(err, coin.ErrExhausted) {
			return nil, fmt.Errorf("core: seed ran dry mid-refill (threshold too low for the adversary's luck): %w", err)
		}
		return nil, err
	}
	return &MintResult{Batch: res.Batch, Attempts: res.Attempts, SeedConsumed: res.SeedConsumed}, nil
}

// Absorb appends an out-of-band minted batch to the store and accounts it
// as a refill. Every honest player must absorb its matching result at the
// same logical instant for exposures to stay in lockstep.
func (g *Generator) Absorb(res *MintResult) error {
	if res == nil || res.Batch == nil {
		return errors.New("core: Absorb of nil mint result")
	}
	res.Batch.Pool = g.cfg.Pool
	if err := g.store.Add(res.Batch); err != nil {
		return err
	}
	g.stats.Batches++
	g.stats.Attempts += res.Attempts
	g.stats.SeedSpent += res.SeedConsumed
	return nil
}

// AbsorbBatch appends a bare batch — leftover coins of a detached seed, or
// a batch restored from disk — to the store without refill accounting.
func (g *Generator) AbsorbBatch(b *coin.Batch) error {
	b.Pool = g.cfg.Pool
	return g.store.Add(b)
}

// maybeRefill runs Coin-Gen when the store is low. The trigger depends only
// on state that is identical at every honest player, so all generators
// refill in the same round.
func (g *Generator) maybeRefill(nd *simnet.Node, rnd io.Reader) error {
	if g.store.Remaining() >= g.cfg.Threshold {
		return nil
	}
	return g.Refill(nd, rnd)
}

// Refill unconditionally runs one Coin-Gen funded by the generator's own
// store, adding a batch of BatchSize sealed coins to it. Exposed for
// applications that want to pre-mint coins during idle periods instead of
// on demand; the blocking counterpart of Mint+Absorb.
func (g *Generator) Refill(nd *simnet.Node, rnd io.Reader) error {
	res, err := Mint(g.cfg, nd, g.store, rnd)
	if err != nil {
		return err
	}
	return g.Absorb(res)
}
