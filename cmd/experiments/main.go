// Command experiments regenerates every experiment in EXPERIMENTS.md —
// the reproduction of each quantitative claim (lemma, theorem, corollary,
// comparison) in the paper's evaluation. Run a single experiment with
// -exp e4 or everything with -exp all.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

type experiment struct {
	name  string
	claim string
	run   func()
}

func main() {
	expFlag := flag.String("exp", "all", "experiment to run (e1..e16 or 'all')")
	flag.Parse()

	experiments := []experiment{
		{"e1", "Lemma 1: cheating dealer passes VSS w.p. ≤ 1/p", runE1},
		{"e2", "Lemma 2: single-VSS cost (2 rounds, n msgs/round of size k, 1 interpolation)", runE2},
		{"e3", "Lemma 3: Batch-VSS soundness error ≤ M/p", runE3},
		{"e4", "Lemma 4 + Cor 1: Batch-VSS amortized cost per secret", runE4},
		{"e5", "Lemma 6 + Cor 2: Bit-Gen communication nMk + 2n²k bits", runE5},
		{"e6", "Lemma 7: agreed clique ≥ n−2t, identical at all honest players", runE6},
		{"e7", "Lemma 8: Coin-Gen expected constant BA iterations", runE7},
		{"e8", "Thm 2 + Cor 3: Coin-Gen amortized per-coin cost", runE8},
		{"e9", "§2 remark: naive GF(2^k) vs special-field multiplication crossover", runE9},
		{"e10", "§1.4: D-PRBG amortized per-coin cost vs from-scratch generation", runE10},
		{"e11", "§3.1: our VSS vs cut-and-choose [9] vs Feldman [12]", runE11},
		{"e12", "Fig 1: bootstrap self-sufficiency over many batches", runE12},
		{"e13", "§1.2: pro-active setting — moving faulty set", runE13},
		{"e14", "§1: randomized BA application consuming shared coins", runE14},
		{"e15", "Thm 2 phase breakdown: per-phase cost attribution of one Coin-Gen run", runE15},
		{"e16", "hostile-network conformance: Coin-Gen verdict/termination under schedules", runE16},
	}

	want := strings.ToLower(*expFlag)
	found := false
	for _, e := range experiments {
		if want != "all" && e.name != want {
			continue
		}
		found = true
		fmt.Printf("==================================================================\n")
		fmt.Printf("%s — %s\n", strings.ToUpper(e.name), e.claim)
		fmt.Printf("==================================================================\n")
		e.run()
		fmt.Println()
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (e1..e16 or all)\n", *expFlag)
		os.Exit(1)
	}
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
