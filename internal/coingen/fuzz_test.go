package coingen

import (
	"testing"

	"repro/internal/bitgen"
	"repro/internal/gf2k"
	"repro/internal/poly"
)

// FuzzDecodeCliqueMsg hammers the grade-cast clique decoder with arbitrary
// bytes: it must never panic and every accepted message must satisfy the
// structural invariants Run depends on.
func FuzzDecodeCliqueMsg(f *testing.F) {
	cfg := Config{Field: gf2k.MustNew(32), N: 7, T: 1, M: 1}
	view := &bitgen.View{Outputs: make([]bitgen.Output, 7)}
	for j := 0; j < 7; j++ {
		view.Outputs[j] = bitgen.Output{OK: true, F: poly.Poly{gf2k.Element(j), 1}}
	}
	good, err := encodeCliqueMsg(cfg, []int{0, 1, 2, 3, 4}, view)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0x05, 0x00})
	f.Add(append(good, 0xff))

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := decodeCliqueMsg(cfg, data)
		if err != nil {
			return
		}
		if len(msg.members) != len(msg.polys) {
			t.Fatal("members/polys length mismatch")
		}
		if len(msg.members) < cfg.N-2*cfg.T || len(msg.members) > cfg.N {
			t.Fatalf("accepted clique of size %d", len(msg.members))
		}
		prev := -1
		for i, m := range msg.members {
			if m <= prev || m >= cfg.N {
				t.Fatalf("member %d out of order/range", m)
			}
			prev = m
			if len(msg.polys[i]) != cfg.T+1 {
				t.Fatalf("polynomial %d has %d coefficients", i, len(msg.polys[i]))
			}
		}
	})
}
