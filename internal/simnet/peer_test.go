package simnet

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// testPeerCfg builds an n-player loopback cluster with freshly reserved
// ports (reserve-then-close; the tiny race is fine for tests).
func testPeerCfg(t *testing.T, n int) *PeerConfig {
	t.Helper()
	cfg := &PeerConfig{
		Cluster: "peer-test",
		Secret:  []byte("0123456789abcdef0123456789abcdef"),
		T:       1, K: 32, Batch: 24, Threshold: 6,
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		addr := ln.Addr().String()
		ln.Close()
		cfg.Peers = append(cfg.Peers, Peer{ID: i, Addr: addr})
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return cfg
}

// startPeerCluster brings up one Network per player and waits for the full
// two-way mesh everywhere.
func startPeerCluster(t *testing.T, cfg *PeerConfig, opts ...Option) []*Network {
	t.Helper()
	n := cfg.N()
	nws := make([]*Network, n)
	for i := 0; i < n; i++ {
		nw, err := NewPeer(cfg, i, opts...)
		if err != nil {
			t.Fatalf("NewPeer(%d): %v", i, err)
		}
		t.Cleanup(nw.Close)
		nws[i] = nw
	}
	for i, nw := range nws {
		if err := nw.WaitPeers(n-1, 10*time.Second); err != nil {
			t.Fatalf("player %d mesh: %v", i, err)
		}
	}
	return nws
}

// --- peers.yaml parsing -------------------------------------------------------

const goodPeersYAML = `# demo cluster
cluster: demo
secret: 303132333435363738396162636465663031323334353637383961626364656
t: 1
k: 32
batch: 96
threshold: 6
seedcoins: 24
peers:
  - id: 1
    addr: 127.0.0.1:9401
  - id: 0
    addr: 127.0.0.1:9400
    listen: 0.0.0.0:9400
    http: 127.0.0.1:8433
`

func TestPeerConfigParseGood(t *testing.T) {
	// Pad the secret to an even hex length of 32 bytes.
	yaml := strings.Replace(goodPeersYAML,
		"secret: 303132333435363738396162636465663031323334353637383961626364656",
		"secret: "+strings.Repeat("61", 32), 1)
	cfg, err := ParsePeerConfig([]byte(yaml))
	if err != nil {
		t.Fatalf("ParsePeerConfig: %v", err)
	}
	if cfg.Cluster != "demo" || cfg.T != 1 || cfg.K != 32 || cfg.Batch != 96 ||
		cfg.Threshold != 6 || cfg.SeedCoins != 24 || cfg.N() != 2 {
		t.Fatalf("parsed config wrong: %+v", cfg)
	}
	// Validate sorts the roster by id.
	if cfg.Peers[0].ID != 0 || cfg.Peers[1].ID != 1 {
		t.Fatalf("roster not sorted: %+v", cfg.Peers)
	}
	if got := cfg.ListenAddr(0); got != "0.0.0.0:9400" {
		t.Fatalf("listen override lost: %q", got)
	}
	if got := cfg.Peers[0].HTTP; got != "127.0.0.1:8433" {
		t.Fatalf("http address lost: %q", got)
	}
	// The digest pins dial addresses but not node-local listen overrides,
	// observability addresses, or the secret — adding http: to a running
	// cluster's config must not force a re-ceremony.
	d1 := cfg.Digest()
	cfg.Peers[0].Listen = "0.0.0.0:19400"
	cfg.Peers[1].HTTP = "127.0.0.1:18433"
	cfg.Secret = []byte("another-32-byte-secret-value-...!")
	if d2 := cfg.Digest(); d2 != d1 {
		t.Fatal("digest depends on listen/http override or secret")
	}
	cfg.Peers[0].Addr = "127.0.0.1:9409"
	if d3 := cfg.Digest(); d3 == d1 {
		t.Fatal("digest missed a dial-address change")
	}
}

// TestPeerConfigGenerationRotatesDigest: the committee generation is part
// of the handshake digest — a reshared roster is a new cluster even when
// every peer row is identical — while generation 0 digests exactly like a
// config written before the field existed.
func TestPeerConfigGenerationRotatesDigest(t *testing.T) {
	sec := "secret: " + strings.Repeat("61", 32) + "\n"
	roster := "peers:\n  - id: 0\n    addr: 127.0.0.1:9400\n  - id: 1\n    addr: 127.0.0.1:9401\n"
	base, err := ParsePeerConfig([]byte(sec + roster))
	if err != nil {
		t.Fatalf("ParsePeerConfig: %v", err)
	}
	gen0, err := ParsePeerConfig([]byte(sec + "generation: 0\n" + roster))
	if err != nil {
		t.Fatalf("ParsePeerConfig generation 0: %v", err)
	}
	gen2, err := ParsePeerConfig([]byte(sec + "generation: 2\n" + roster))
	if err != nil {
		t.Fatalf("ParsePeerConfig generation 2: %v", err)
	}
	if gen2.Generation != 2 {
		t.Fatalf("generation parsed as %d, want 2", gen2.Generation)
	}
	if gen0.Digest() != base.Digest() {
		t.Fatal("explicit generation 0 changed the digest of a pre-resharing config")
	}
	if gen2.Digest() == base.Digest() {
		t.Fatal("generation bump did not rotate the handshake digest")
	}
	if _, err := ParsePeerConfig([]byte(sec + "generation: -1\n" + roster)); err == nil {
		t.Fatal("negative generation accepted")
	}
}

// TestPeerConfigParseErrors locks in the loud-failure contract: operator
// typos are startup errors with line numbers, never silent defaults.
func TestPeerConfigParseErrors(t *testing.T) {
	sec := "secret: " + strings.Repeat("61", 32) + "\n"
	roster := "peers:\n  - id: 0\n    addr: 127.0.0.1:9400\n  - id: 1\n    addr: 127.0.0.1:9401\n"
	cases := []struct {
		name, yaml, wantErr string
	}{
		{"tab indentation", sec + "peers:\n\t- id: 0\n", "tab indentation"},
		{"duplicate key", sec + "t: 1\nt: 2\n" + roster, `duplicate key "t"`},
		{"unknown key", sec + "tt: 1\n" + roster, `unknown key "tt"`},
		{"unknown peer key", sec + "peers:\n  - id: 0\n    address: x:1\n", `unknown peer key "address"`},
		{"bad secret hex", "secret: zz\n" + roster, "not valid hex"},
		{"short secret", "secret: 6161\n" + roster, "≥ 16 bytes"},
		{"non-integer t", sec + "t: one\n" + roster, "wants an integer"},
		{"peers scalar", sec + "peers: 3\n", "must introduce a list"},
		{"field before item", sec + "peers:\n    id: 0\n", "before any - item"},
		{"indent outside peers", sec + "t: 1\n  stray: 1\n", "outside peers"},
		{"missing peer id", sec + "peers:\n  - addr: 127.0.0.1:9400\n", "has no id"},
		{"duplicate peer id", sec + "peers:\n  - id: 0\n    addr: a:1\n  - id: 0\n    addr: b:1\n", "duplicate peer id"},
		{"id gap", sec + "peers:\n  - id: 0\n    addr: a:1\n  - id: 2\n    addr: b:1\n", "ids must cover"},
		{"duplicate addr", sec + "peers:\n  - id: 0\n    addr: a:1\n  - id: 1\n    addr: a:1\n", "share addr"},
		{"missing addr", sec + "peers:\n  - id: 0\n  - id: 1\n    addr: a:1\n", "has no addr"},
		{"unterminated quote", sec + "cluster: 'demo\n" + roster, "unterminated"},
		{"no colon", sec + "what\n" + roster, "expected key: value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParsePeerConfig([]byte(tc.yaml))
			if err == nil {
				t.Fatalf("accepted:\n%s", tc.yaml)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// --- handshake ----------------------------------------------------------------

var testDigest = [32]byte{1, 2, 3}

func handshakePipe() (dialer, accepter net.Conn) {
	return net.Pipe()
}

func TestHandshakeGood(t *testing.T) {
	secret := []byte("0123456789abcdef")
	dc, ac := handshakePipe()
	defer dc.Close()
	defer ac.Close()
	accErr := make(chan error, 1)
	go func() {
		from, err := acceptHandshake(ac, secret, 2, testDigest)
		if err == nil && from != 5 {
			err = fmt.Errorf("authenticated wrong dialer id %d", from)
		}
		accErr <- err
	}()
	if err := dialHandshake(dc, secret, 5, 2, testDigest); err != nil {
		t.Fatalf("dialer: %v", err)
	}
	if err := <-accErr; err != nil {
		t.Fatalf("accepter: %v", err)
	}
}

// TestHandshakeBadVersion crafts a HELLO from a build speaking a different
// wire version: the accepter must reject with ErrBadVersion, and the raw
// REJECT frame must map back to ErrBadVersion at the dialer.
func TestHandshakeBadVersion(t *testing.T) {
	secret := []byte("0123456789abcdef")
	dc, ac := handshakePipe()
	defer dc.Close()
	defer ac.Close()
	accErr := make(chan error, 1)
	go func() {
		_, err := acceptHandshake(ac, secret, 2, testDigest)
		accErr <- err
	}()

	hello := make([]byte, 0, helloLen)
	hello = append(hello, helloMagic...)
	hello = append(hello, peerWireVersion+1) // foreign build
	hello = append(hello, []byte{2, 0, 0, 0}...)
	hello = append(hello, testDigest[:]...)
	hello = append(hello, make([]byte, nonceLen)...)
	if err := writeFrame(dc, framePeerHello, 5, hello); err != nil {
		t.Fatal(err)
	}
	typ, code, payload, err := readFrame(dc)
	if err != nil {
		t.Fatal(err)
	}
	if typ != framePeerReject {
		t.Fatalf("expected a REJECT frame, got type %d", typ)
	}
	if err := rejectError(code, string(payload)); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("reject maps to %v, want ErrBadVersion", err)
	}
	if err := <-accErr; !errors.Is(err, ErrBadVersion) {
		t.Fatalf("accepter error = %v, want ErrBadVersion", err)
	}
}

// TestHandshakeIdentityMismatch dials a listener that is not the player the
// roster promised: both sides must fail with ErrIdentityMismatch.
func TestHandshakeIdentityMismatch(t *testing.T) {
	secret := []byte("0123456789abcdef")
	dc, ac := handshakePipe()
	defer dc.Close()
	defer ac.Close()
	accErr := make(chan error, 1)
	go func() {
		_, err := acceptHandshake(ac, secret, 1, testDigest) // we are player 1...
		accErr <- err
	}()
	err := dialHandshake(dc, secret, 5, 2, testDigest) // ...dialer wanted player 2
	if !errors.Is(err, ErrIdentityMismatch) {
		t.Fatalf("dialer error = %v, want ErrIdentityMismatch", err)
	}
	if err := <-accErr; !errors.Is(err, ErrIdentityMismatch) {
		t.Fatalf("accepter error = %v, want ErrIdentityMismatch", err)
	}
}

// TestHandshakeConfigMismatch runs the handshake between two daemons that
// loaded different peers.yaml files: ErrConfigMismatch on both sides.
func TestHandshakeConfigMismatch(t *testing.T) {
	secret := []byte("0123456789abcdef")
	dc, ac := handshakePipe()
	defer dc.Close()
	defer ac.Close()
	otherDigest := testDigest
	otherDigest[0] ^= 0xFF
	accErr := make(chan error, 1)
	go func() {
		_, err := acceptHandshake(ac, secret, 2, otherDigest)
		accErr <- err
	}()
	err := dialHandshake(dc, secret, 5, 2, testDigest)
	if !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("dialer error = %v, want ErrConfigMismatch", err)
	}
	if err := <-accErr; !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("accepter error = %v, want ErrConfigMismatch", err)
	}
}

// TestHandshakeWrongSecret gives the accepter a different cluster secret:
// its WELCOME MAC cannot verify, so the dialer refuses to authenticate.
func TestHandshakeWrongSecret(t *testing.T) {
	dc, ac := handshakePipe()
	defer dc.Close()
	defer ac.Close()
	go func() {
		acceptHandshake(ac, []byte("wrong-secret-bbbb"), 2, testDigest)
	}()
	err := dialHandshake(dc, []byte("right-secret-aaaa"), 5, 2, testDigest)
	if !errors.Is(err, ErrIdentityMismatch) {
		t.Fatalf("dialer error = %v, want ErrIdentityMismatch (MAC failure)", err)
	}
}

// TestDuplicatePlayerRejected connects a full mesh, then impersonates an
// already-connected player against a live accepter: the second connection
// must be refused with ErrDuplicatePlayer and the mesh must stay intact.
func TestDuplicatePlayerRejected(t *testing.T) {
	cfg := testPeerCfg(t, 3)
	nws := startPeerCluster(t, cfg)

	conn, err := net.Dial("tcp", cfg.Peers[0].Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	err = dialHandshake(conn, cfg.Secret, 1, 0, cfg.Digest())
	if err == nil {
		// The duplicate is only detected after the handshake binds; the
		// REJECT arrives as the next frame.
		typ, code, payload, rerr := readFrame(conn)
		if rerr != nil || typ != framePeerReject {
			t.Fatalf("no REJECT after duplicate handshake (type %d, err %v)", typ, rerr)
		}
		err = rejectError(code, string(payload))
	}
	if !errors.Is(err, ErrDuplicatePlayer) {
		t.Fatalf("duplicate dial error = %v, want ErrDuplicatePlayer", err)
	}
	// The real player 1's connection must still be bound.
	if !nws[0].pn.inboundBound(1) {
		t.Fatal("duplicate rejection displaced the legitimate connection")
	}
}

// --- rounds over the peer transport -------------------------------------------

// TestPeerRoundDelivery runs a lockstep broadcast protocol across three
// in-process daemons and checks every round delivers everyone's traffic in
// deterministic order.
func TestPeerRoundDelivery(t *testing.T) {
	const rounds = 5
	cfg := testPeerCfg(t, 3)
	nws := startPeerCluster(t, cfg)
	for _, nw := range nws {
		if err := nw.StartAt(0); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i, nw := range nws {
		wg.Add(1)
		go func(i int, nw *Network) {
			defer wg.Done()
			nd := nw.Node(i)
			for r := 0; r < rounds; r++ {
				nd.Broadcast([]byte{byte(i), byte(r)})
				msgs, err := nd.EndRound()
				if err != nil {
					errs[i] = fmt.Errorf("round %d: %w", r, err)
					return
				}
				if len(msgs) != 3 {
					errs[i] = fmt.Errorf("round %d: got %d messages, want 3", r, len(msgs))
					return
				}
				for j, m := range msgs {
					if m.From != j || m.Payload[0] != byte(j) || m.Payload[1] != byte(r) {
						errs[i] = fmt.Errorf("round %d: message %d is %d/%v", r, j, m.From, m.Payload)
						return
					}
				}
			}
		}(i, nw)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("player %d: %v", i, err)
		}
	}
}

// TestPeerReconnectResumesRounds cuts one established connection mid-run.
// The transport must redial, and rounds must keep completing on every
// player — with at most the one in-flight message lost on the cut edge and
// later rounds carrying the sender's traffic again.
func TestPeerReconnectResumesRounds(t *testing.T) {
	const rounds, cutAfter = 8, 3
	cfg := testPeerCfg(t, 3)
	nws := startPeerCluster(t, cfg,
		WithRoundTimeout(5*time.Second),
		WithDialBackoff(20*time.Millisecond, 100*time.Millisecond))
	for _, nw := range nws {
		if err := nw.StartAt(0); err != nil {
			t.Fatal(err)
		}
	}

	// A reusable barrier so the cut happens between rounds, when no flush
	// is in flight anywhere.
	step := make(chan struct{})
	var arrived sync.WaitGroup
	sync3 := func() {
		arrived.Done()
		<-step
	}
	arrived.Add(3)
	go func() {
		for r := 0; r < rounds; r++ {
			arrived.Wait()
			arrived.Add(3)
			if r == cutAfter {
				// Sever player 0's established connection to player 1.
				pc := nws[0].pn.out[1]
				pc.mu.Lock()
				if pc.conn != nil {
					pc.conn.Close()
				}
				pc.mu.Unlock()
			}
			for i := 0; i < 3; i++ {
				step <- struct{}{}
			}
		}
	}()

	type tally struct{ total, lastFrom0 int }
	results := make([]tally, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for i, nw := range nws {
		wg.Add(1)
		go func(i int, nw *Network) {
			defer wg.Done()
			nd := nw.Node(i)
			for r := 0; r < rounds; r++ {
				sync3()
				nd.Broadcast([]byte{byte(i), byte(r)})
				msgs, err := nd.EndRound()
				if err != nil {
					errs[i] = fmt.Errorf("round %d: %w", r, err)
					return
				}
				results[i].total += len(msgs)
				if r == rounds-1 {
					for _, m := range msgs {
						if m.From == 0 {
							results[i].lastFrom0++
						}
					}
				}
			}
		}(i, nw)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("player %d: %v", i, err)
		}
	}
	for i, res := range results {
		// Player 1 may lose the single message player 0 flushed into the
		// cut; everyone else sees full traffic.
		if res.total < rounds*3-1 {
			t.Fatalf("player %d delivered only %d/%d messages", i, res.total, rounds*3)
		}
		if res.lastFrom0 != 1 {
			t.Fatalf("player %d: final round carried %d messages from player 0, want 1 (reconnect failed?)", i, res.lastFrom0)
		}
	}
}
