package coin

import (
	"fmt"

	"repro/internal/gf2k"
	"repro/internal/simnet"
)

// Store is a per-player FIFO of coin batches. It is itself a Source,
// draining batches in order; every honest player must Add structurally
// identical batches in the same order for exposures to stay in lockstep.
// The bootstrap generator (internal/core) keeps one Store per player and
// refills it by running Coin-Gen whenever Remaining drops below its
// threshold (§1.2: "Once the number of remaining coins drops beneath a
// certain level, a new batch is generated").
type Store struct {
	// Universe, when > 0, is the number of players in the deployment. Add
	// rejects batches whose reconstruction set references a player outside
	// [0, Universe). Zero leaves the universe unchecked (it is then bound
	// by the first batch added after BindUniverse, or never). The binding
	// is persisted by MarshalBinary, and once set it only changes through
	// RebindUniverse — the explicit committee-migration path used by
	// internal/reshare.
	Universe int

	// Generation counts dealer-free reshares: 0 for the store the trusted
	// dealer created, bumped by one each time internal/reshare hands the
	// tail to a new committee (or refreshes it in place). It tags the
	// persisted store so a daemon can tell a pre-reshare blob from a
	// post-reshare one and refuse the stale roster.
	Generation int

	batches []*Batch

	// Structural anchor, fixed by the first batch ever added (it survives
	// batches being drained and popped): all later batches must agree, or
	// exposures would desync across players.
	bound  bool
	fieldK int
	fieldM uint64
	t      int
}

var _ Source = (*Store)(nil)

// Add appends a batch to the store after checking it is structurally
// compatible with the batches already (or previously) stored: same field
// GF(2^k) with the same reduction polynomial, same fault bound t, and a
// reconstruction set drawn from the same player-id universe. A mismatched
// batch would not fail here but rounds later, as a desynchronized exposure
// at whichever player accepted it, so the store refuses it up front.
func (s *Store) Add(b *Batch) error {
	if b == nil {
		return fmt.Errorf("coin: Add of nil batch")
	}
	if err := b.Validate(); err != nil {
		return err
	}
	if s.Universe > 0 {
		for _, idx := range b.S {
			if idx >= s.Universe {
				return fmt.Errorf("coin: batch reconstruction set references player %d outside universe [0,%d)",
					idx, s.Universe)
			}
		}
	}
	if s.bound {
		if b.Field.K() != s.fieldK || b.Field.Modulus() != s.fieldM {
			return fmt.Errorf("coin: batch field GF(2^%d) (modulus %#x) incompatible with store field GF(2^%d) (modulus %#x)",
				b.Field.K(), b.Field.Modulus(), s.fieldK, s.fieldM)
		}
		if b.T != s.t {
			return fmt.Errorf("coin: batch fault bound t=%d incompatible with store t=%d", b.T, s.t)
		}
	} else {
		s.bound = true
		s.fieldK = b.Field.K()
		s.fieldM = b.Field.Modulus()
		s.t = b.T
	}
	s.batches = append(s.batches, b)
	return nil
}

// BindUniverse fixes the player-id universe to [0, n) and re-checks every
// batch already stored against it — the entry point for stores restored
// from disk. A store whose universe is already bound (set by a previous
// BindUniverse, or restored from a v2 encoding) refuses a different n: a
// store restored under the wrong roster must fail at resume time, not
// desync exposures rounds later. Changing the universe legitimately — a
// committee change — goes through RebindUniverse.
func (s *Store) BindUniverse(n int) error {
	if s.Universe > 0 && s.Universe != n {
		return fmt.Errorf("coin: store is bound to a %d-player universe (generation %d); restoring it under a %d-player roster needs RebindUniverse (the reshare migration path)",
			s.Universe, s.Generation, n)
	}
	return s.RebindUniverse(n)
}

// RebindUniverse sets the player-id universe to [0, n) even when a
// different universe is already bound, re-checking every stored batch
// against the new size. This is the explicit migration path for committee
// changes: internal/reshare builds the new committee's store with
// RebindUniverse after the old shares have been re-dealt, and nothing else
// should call it — accidental roster mismatches are BindUniverse's job to
// reject.
func (s *Store) RebindUniverse(n int) error {
	if n < 1 {
		return fmt.Errorf("coin: invalid universe size %d", n)
	}
	for _, b := range s.batches {
		for _, idx := range b.S {
			if idx >= n {
				return fmt.Errorf("coin: stored batch references player %d outside universe [0,%d)", idx, n)
			}
		}
	}
	s.Universe = n
	return nil
}

// Batches returns the stored batches, oldest first. The slice is a copy but
// the batches are shared; callers transferring them elsewhere (e.g. after an
// out-of-band refill) must not keep exposing from this store.
func (s *Store) Batches() []*Batch {
	out := make([]*Batch, len(s.batches))
	copy(out, s.batches)
	return out
}

// DetachTail removes the `count` newest sealed coins from the store into a
// new standalone Store, leaving the oldest Remaining()−count coins behind.
// The serving side keeps draining the front in FIFO order while the
// detached tail funds an out-of-band Coin-Gen on a separate network — the
// beacon's refill pipeline. Every honest player must detach the same count
// at the same logical instant; the resulting split is then structurally
// identical everywhere. count must leave at least one coin behind.
func (s *Store) DetachTail(count int) (*Store, error) {
	if count < 1 {
		return nil, fmt.Errorf("coin: cannot detach %d coins", count)
	}
	if rem := s.Remaining(); count >= rem {
		return nil, fmt.Errorf("coin: cannot detach %d of %d remaining coins (at least one must stay)", count, rem)
	}
	out := &Store{Universe: s.Universe, Generation: s.Generation, bound: s.bound, fieldK: s.fieldK, fieldM: s.fieldM, t: s.t}
	var detached []*Batch
	for i := len(s.batches) - 1; i >= 0 && count > 0; i-- {
		b := s.batches[i]
		take := b.Remaining()
		if take == 0 {
			continue
		}
		if take > count {
			take = count
		}
		nb, err := b.Split(take)
		if err != nil {
			return nil, err
		}
		// Prepend: we walk newest→oldest but the detached store must stay
		// a FIFO (oldest first) like any other.
		detached = append([]*Batch{nb}, detached...)
		count -= take
	}
	out.batches = detached
	return out, nil
}

// Discard advances the store past the next `count` unexposed coins without
// consuming network rounds, draining batches front-to-back exactly as Expose
// would — the rejoin catch-up path (see Batch.Discard). A player that was
// down while the cluster opened coins calls Discard with the number it
// missed so its next Expose transmits the share the others expect.
func (s *Store) Discard(count int) error {
	if count < 0 || count > s.Remaining() {
		return fmt.Errorf("coin: cannot discard %d of %d remaining coins", count, s.Remaining())
	}
	for count > 0 {
		for len(s.batches) > 0 && s.batches[0].Remaining() == 0 {
			s.batches = s.batches[1:]
		}
		take := s.batches[0].Remaining()
		if take > count {
			take = count
		}
		if err := s.batches[0].Discard(take); err != nil {
			return err
		}
		count -= take
	}
	return nil
}

// Remaining returns the total number of unexposed coins across all batches.
func (s *Store) Remaining() int {
	total := 0
	for _, b := range s.batches {
		total += b.Remaining()
	}
	return total
}

// Expose reveals the next sealed coin from the oldest non-empty batch.
func (s *Store) Expose(nd *simnet.Node) (gf2k.Element, error) {
	for len(s.batches) > 0 && s.batches[0].Remaining() == 0 {
		s.batches = s.batches[1:]
	}
	if len(s.batches) == 0 {
		return 0, ErrExhausted
	}
	return s.batches[0].Expose(nd)
}

// ExposeBit reveals the next coin reduced to one bit.
func (s *Store) ExposeBit(nd *simnet.Node) (byte, error) {
	e, err := s.Expose(nd)
	if err != nil {
		return 0, err
	}
	return byte(e & 1), nil
}

// ExposeMod reveals the next coin reduced mod m into [1, m].
func (s *Store) ExposeMod(nd *simnet.Node, m int) (int, error) {
	for len(s.batches) > 0 && s.batches[0].Remaining() == 0 {
		s.batches = s.batches[1:]
	}
	if len(s.batches) == 0 {
		return 0, ErrExhausted
	}
	return s.batches[0].ExposeMod(nd, m)
}
