// Package core implements the paper's headline object: the bootstrapped
// distributed pseudo-random bit generator (D-PRBG, §1.1–1.2 and Fig. 1).
//
// A Generator is one player's handle on a self-sustaining stream of sealed
// shared coins. It starts from a small trusted-dealer seed (O(1) sealed
// coins, obtained once — "the services of a trusted dealer would be used
// only once, and for a small number of coins"). Whenever the number of
// remaining sealed coins drops below a threshold, the generator runs
// Coin-Gen to mint a fresh batch of M coins, spending an expected constant
// number of remaining coins to do so — the bootstrap loop of Fig. 1: each
// batch produces "not only the coins for the current execution but also the
// seed for the next execution".
//
// All honest players drive their Generators in lockstep; the refill
// decision depends only on shared state (the count of exposed coins), so it
// fires at the same instant everywhere.
//
// Because every batch is generated from fresh polynomials dealt by the
// current clique, the faulty set may change arbitrarily between batches
// (the paper's pro-active setting, §1.2): no long-lived secret outlives a
// batch.
package core

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/ba"
	"repro/internal/coin"
	"repro/internal/coingen"
	"repro/internal/gf2k"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/simnet"
)

// DefaultThreshold is the refill trigger: a new batch is generated when
// fewer than this many sealed coins remain. It must cover Coin-Gen's own
// consumption (one challenge coin plus one coin per leader attempt); with
// t/n ≤ 1/6 the probability that a refill needs more than three leader
// draws is below 1/200.
const DefaultThreshold = 6

// Config parameterizes a D-PRBG.
type Config struct {
	// Field is GF(2^k): each coin is one element (a k-ary coin).
	Field gf2k.Field
	// N is the player count; T the fault bound; N ≥ 6T+1.
	N, T int
	// BatchSize is M, the number of sealed coins minted per Coin-Gen run.
	BatchSize int
	// Threshold triggers a refill when Remaining() < Threshold.
	// Defaults to DefaultThreshold. Must be ≤ BatchSize so refills make
	// net progress.
	Threshold int
	// Agreement overrides the BA protocol used by Coin-Gen (optional).
	Agreement ba.Protocol
	// MaxAttempts bounds Coin-Gen leader retries (optional).
	MaxAttempts int
	// Counters, when non-nil, records all protocol costs.
	Counters *metrics.Counters
}

func (c Config) withDefaults() Config {
	if c.Threshold == 0 {
		c.Threshold = DefaultThreshold
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.N < 6*c.T+1 {
		return fmt.Errorf("core: need n ≥ 6t+1, got n=%d t=%d", c.N, c.T)
	}
	if c.BatchSize < 1 {
		return fmt.Errorf("core: batch size must be ≥ 1, got %d", c.BatchSize)
	}
	if c.Threshold < 2 {
		return fmt.Errorf("core: threshold must be ≥ 2 (a refill itself consumes coins), got %d", c.Threshold)
	}
	if c.BatchSize <= c.Threshold {
		return fmt.Errorf("core: batch size %d must exceed threshold %d or refills cannot make progress",
			c.BatchSize, c.Threshold)
	}
	return nil
}

// Stats summarizes a generator's lifetime activity.
type Stats struct {
	// CoinsDelivered counts coins handed to the application.
	CoinsDelivered int
	// Batches counts Coin-Gen refills.
	Batches int
	// SeedSpent counts coins consumed internally by refills.
	SeedSpent int
	// Attempts accumulates Coin-Gen leader-selection iterations.
	Attempts int
}

// Generator is one player's D-PRBG endpoint. Not safe for concurrent use;
// drive it from the player's protocol goroutine.
type Generator struct {
	cfg   Config
	store *coin.Store
	stats Stats
}

// SetupTrusted bootstraps n generators from a one-time trusted dealer that
// seals `seedCoins` initial coins (must be ≥ cfg.Threshold... at minimum
// enough to fund the first refill). This mirrors the paper's Rabin-style
// initialization; afterwards the system is self-sufficient.
func SetupTrusted(cfg Config, seedCoins int, rnd io.Reader) ([]*Generator, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if seedCoins < cfg.Threshold {
		return nil, fmt.Errorf("core: initial seed of %d coins is below threshold %d", seedCoins, cfg.Threshold)
	}
	batches, _, err := coin.DealTrusted(cfg.Field, cfg.N, cfg.T, seedCoins, rnd)
	if err != nil {
		return nil, err
	}
	gens := make([]*Generator, cfg.N)
	for i := range gens {
		st := &coin.Store{}
		batches[i].Counters = cfg.Counters
		st.Add(batches[i])
		gens[i] = &Generator{cfg: cfg, store: st}
	}
	return gens, nil
}

// NewFromBatch wraps an externally produced coin batch (e.g. from a prior
// session) as a generator. Every player must construct its generator from
// the matching per-player batch.
func NewFromBatch(cfg Config, b *coin.Batch) (*Generator, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	st := &coin.Store{}
	st.Add(b)
	return &Generator{cfg: cfg, store: st}, nil
}

// Remaining reports the number of sealed coins currently in the store.
func (g *Generator) Remaining() int { return g.store.Remaining() }

// Stats returns a copy of the lifetime statistics.
func (g *Generator) Stats() Stats { return g.stats }

// Next returns the next shared coin, refilling first when the store has
// dropped below the threshold. Every honest player obtains the same value.
func (g *Generator) Next(nd *simnet.Node, rnd io.Reader) (gf2k.Element, error) {
	if err := g.maybeRefill(nd, rnd); err != nil {
		return 0, err
	}
	e, err := g.store.Expose(nd)
	if err != nil {
		return 0, err
	}
	g.stats.CoinsDelivered++
	return e, nil
}

// NextBit returns the next shared coin reduced to a single bit.
func (g *Generator) NextBit(nd *simnet.Node, rnd io.Reader) (byte, error) {
	e, err := g.Next(nd, rnd)
	if err != nil {
		return 0, err
	}
	return byte(e & 1), nil
}

// NextMod returns the next shared coin reduced mod m into [1, m].
func (g *Generator) NextMod(nd *simnet.Node, rnd io.Reader, m int) (int, error) {
	if m <= 0 {
		return 0, fmt.Errorf("core: invalid modulus %d", m)
	}
	e, err := g.Next(nd, rnd)
	if err != nil {
		return 0, err
	}
	l := int(uint64(e) % uint64(m))
	if l == 0 {
		l = m
	}
	return l, nil
}

// maybeRefill runs Coin-Gen when the store is low. The trigger depends only
// on state that is identical at every honest player, so all generators
// refill in the same round.
func (g *Generator) maybeRefill(nd *simnet.Node, rnd io.Reader) error {
	if g.store.Remaining() >= g.cfg.Threshold {
		return nil
	}
	return g.Refill(nd, rnd)
}

// Refill unconditionally runs one Coin-Gen, adding a batch of BatchSize
// sealed coins to the store. Exposed for applications that want to pre-mint
// coins during idle periods instead of on demand.
func (g *Generator) Refill(nd *simnet.Node, rnd io.Reader) error {
	sp := nd.Tracer().Start(nd.Index(), nd.Round(), obs.KindProtocol, "core/refill")
	defer func() { sp.End(nd.Round()) }()
	before := g.store.Remaining()
	res, err := coingen.Run(nd, coingen.Config{
		Field:       g.cfg.Field,
		N:           g.cfg.N,
		T:           g.cfg.T,
		M:           g.cfg.BatchSize,
		Seed:        g.store,
		Agreement:   g.cfg.Agreement,
		MaxAttempts: g.cfg.MaxAttempts,
		Counters:    g.cfg.Counters,
	}, rnd)
	if err != nil {
		if errors.Is(err, coin.ErrExhausted) {
			return fmt.Errorf("core: seed ran dry mid-refill (threshold too low for the adversary's luck): %w", err)
		}
		return err
	}
	g.store.Add(res.Batch)
	g.stats.Batches++
	g.stats.Attempts += res.Attempts
	g.stats.SeedSpent += before - (g.store.Remaining() - g.cfg.BatchSize)
	return nil
}
