// Package beacon is the serving layer on top of the D-PRBG core: a
// long-running randomness-beacon Service in the style of modern beacon
// deployments (SoK: Decentralized Randomness Beacon Protocols; RandSolomon's
// "RNG as a service" argument), built on the paper's bootstrap generator.
//
// A Service owns the whole n-player simnet cluster in one process: one
// worker goroutine per player (the simnet round barrier requires every
// active player to end each round) plus a single protocol executive that is
// the only scheduler of protocol work. Clients never touch protocol state;
// they enqueue draw requests into a bounded queue and the executive serves
// them in lockstep sweeps across all players.
//
// The headline mechanism is the ahead-of-demand refill pipeline. The store
// double-buffers batches: when the sealed-coin count falls below the
// configured high-water mark (core.Config.HighWater), the executive
// detaches a small seed from the tail of every player's store and starts a
// Coin-Gen on a dedicated refill network, while the serving network keeps
// exposing coins from the front. When the mint completes, the executive
// absorbs the new batch (and any unspent seed) at a quiescent instant, so
// the identical store mutation happens at every player. A draw therefore
// almost never waits on a protocol round; Stats().BlockedDraws counts the
// ones that did.
//
// Production ergonomics on the request path: context cancellation,
// backpressure (bounded queue, ErrOverloaded), a token-bucket rate limiter
// (ErrRateLimited), and a Stats snapshot. Shutdown is graceful: Close
// absorbs any in-flight mint, serves the queued requests, stops the
// cluster, and Persist writes every player's sealed store to disk via the
// coin.Batch wire format — a restarted Service resumes from those files
// without ever consulting the trusted dealer again (§1.2).
//
// Service is the single-process deployment. The multi-process deployment —
// one OS process per player, peered over authenticated TCP — is Daemon
// (daemon.go): DealCluster runs the one-time ceremony for a
// simnet.PeerConfig, and each Daemon then loads its own state files, joins
// (or rejoins, after a crash) the running cluster, and appends every
// opened coin to an append-only public log that is byte-identical across
// players. docs/OPERATIONS.md is the operator runbook for that mode.
package beacon

import (
	"context"
	cryptorand "crypto/rand"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/coin"
	"repro/internal/core"
	"repro/internal/gf2k"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/simnet"
)

var (
	// ErrOverloaded is returned when the bounded request queue is full —
	// the backpressure signal. Clients should retry after a delay.
	ErrOverloaded = errors.New("beacon: request queue full")
	// ErrRateLimited is returned when the token-bucket rate limiter has no
	// token for the request.
	ErrRateLimited = errors.New("beacon: rate limit exceeded")
	// ErrClosed is returned for draws after Close has begun.
	ErrClosed = errors.New("beacon: service closed")
)

// MaxDrawBits bounds a single DrawBits request so one client cannot occupy
// the cluster for an unbounded number of exposure rounds.
const MaxDrawBits = 4096

// MaxDrawBatch bounds a single DrawN request for the same reason: a batch
// spends one exposure round per coin.
const MaxDrawBatch = 256

// serveMaxRounds is the round budget for the long-lived serving network
// and for refill networks: effectively unlimited (the default simnet
// budget of 1e5 exists to catch diverging protocols under test, but a
// beacon consumes one round per coin by design).
const serveMaxRounds = 1 << 40

// Config parameterizes a beacon Service.
type Config struct {
	// Core is the D-PRBG configuration (field, N, T, BatchSize, Threshold,
	// HighWater). HighWater > 0 enables the ahead-of-demand refill
	// pipeline; HighWater == 0 falls back to blocking refills on the
	// serving network whenever the store reaches Threshold.
	Core core.Config
	// SeedCoins is the size of the one-time trusted-dealer seed used by
	// New. Defaults to Core.BatchSize. Resume ignores it.
	SeedCoins int
	// SeedReserve is the number of coins detached from the store tail to
	// fund each pipelined refill (the out-of-band Coin-Gen's challenge and
	// leader draws). Defaults to the effective Core threshold.
	SeedReserve int
	// QueueDepth bounds the request queue; a full queue rejects with
	// ErrOverloaded. Defaults to 256.
	QueueDepth int
	// MaxBatch caps how many coins one lockstep sweep exposes; queued
	// requests are coalesced up to this budget. Defaults to 32.
	MaxBatch int
	// Rate and Burst configure the token-bucket rate limiter in requests
	// per second. Rate == 0 disables limiting; Burst defaults to 1 when a
	// rate is set.
	Rate  float64
	Burst int
	// Counters, when non-nil, is attached to both networks, so
	// Stats().Counters reports the protocol cost of serving.
	Counters *metrics.Counters
	// Tracer, when non-nil, instruments refill networks, so every
	// pipelined Coin-Gen emits the usual per-phase spans (Batch-VSS,
	// Grade-Cast, BA, Coin-Expose) for obs.PhaseSummary. The serving
	// network is left untraced: its spans would interleave with refill
	// spans of the same player and draw latency is tracked by Stats
	// instead.
	Tracer *obs.Tracer
	// Metrics, when non-nil, exports the service's Prometheus families
	// (draw latency, queue depth, refill pipeline — see NewServiceMetrics).
	// Nil leaves the draw hot path free of any timing or allocation.
	Metrics *ServiceMetrics
	// Rand supplies each player's private randomness (polynomial dealing
	// in Coin-Gen). Defaults to crypto/rand for every player; tests
	// substitute seeded readers for reproducibility.
	Rand func(player int) io.Reader
	// Parallelism bounds the total number of cores the service's
	// pure-compute inner loops (Berlekamp–Welch decodes, γ combinations,
	// consistency graphs) may borrow, across ALL players and both
	// networks: one root parallel.Pool of this width is created and every
	// node works through a Fork of it, so concurrent draws and a
	// background refill compete for — rather than multiply — the budget.
	// 0 (the default) runs everything inline on the node goroutines;
	// values > 1 enable the pool; negative selects runtime.GOMAXPROCS(0).
	// Results and transcripts are identical at every setting.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.Core.Threshold == 0 {
		c.Core.Threshold = core.DefaultThreshold
	}
	if c.SeedCoins == 0 {
		c.SeedCoins = c.Core.BatchSize
	}
	if c.SeedReserve == 0 {
		c.SeedReserve = c.Core.Threshold
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 256
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 32
	}
	if c.Rate > 0 && c.Burst == 0 {
		c.Burst = 1
	}
	if c.Rand == nil {
		c.Rand = func(int) io.Reader { return cryptorand.Reader }
	}
	// The root pool is created once here so that New and Resume hand the
	// same handle to every generator (and through them to every minted
	// batch). Parallelism 0 or 1 leaves Core.Pool nil: fully serial.
	if c.Core.Pool == nil && (c.Parallelism > 1 || c.Parallelism < 0) {
		c.Core.Pool = parallel.New(c.Parallelism).WithCounters(c.Counters)
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	c = c.withDefaults()
	if err := c.Core.Validate(); err != nil {
		return err
	}
	if c.QueueDepth < 1 {
		return fmt.Errorf("beacon: queue depth must be ≥ 1, got %d", c.QueueDepth)
	}
	if c.MaxBatch < 1 {
		return fmt.Errorf("beacon: max batch must be ≥ 1, got %d", c.MaxBatch)
	}
	if c.Rate < 0 {
		return fmt.Errorf("beacon: negative rate %v", c.Rate)
	}
	if c.SeedReserve < 2 {
		return fmt.Errorf("beacon: seed reserve must be ≥ 2 (a refill spends a challenge plus leader draws), got %d", c.SeedReserve)
	}
	return nil
}

// Stats is a point-in-time snapshot of the service's activity.
type Stats struct {
	// QueueDepth is the number of requests waiting in the bounded queue.
	QueueDepth int
	// Remaining is the number of sealed coins left in the store.
	Remaining int
	// CoinsDelivered and Draws count coins handed out and requests served.
	CoinsDelivered int64
	Draws          int64
	// Refills counts absorbed Coin-Gen batches; PipelinedRefills ran
	// ahead of demand on the refill network, BlockingRefills stalled the
	// serving network.
	Refills          int64
	PipelinedRefills int64
	BlockingRefills  int64
	// BlockedDraws counts requests that had to wait on a Coin-Gen round
	// (in-flight or blocking) before their coins could be exposed. With a
	// well-tuned high-water mark this stays 0.
	BlockedDraws int64
	// Overloaded and RateLimited count rejected requests.
	Overloaded  int64
	RateLimited int64
	// RefillInFlight reports whether a pipelined Coin-Gen is running now.
	RefillInFlight bool
	// Resumed reports whether the service was restored from persisted
	// stores (no trusted dealer involved) rather than freshly seeded.
	Resumed bool
	// Counters is the protocol cost snapshot (zero unless Config.Counters
	// was set).
	Counters metrics.Snapshot
}

type opKind int

const (
	opExpose opKind = iota + 1
	opRefill
	opStop
)

type command struct {
	op opKind
	k  int // coins to expose for opExpose
}

type workerResult struct {
	player int
	vals   []gf2k.Element
	err    error
}

type drawResult struct {
	vals []gf2k.Element
	seq  int64 // stream position of vals[0] (see DrawN)
	err  error
}

type request struct {
	ctx  context.Context
	need int
	resp chan drawResult
}

type refillOutcome struct {
	seeds []*coin.Store      // detached seeds, possibly with leftover coins
	mints []*core.MintResult // per-player minted batches
	err   error
}

// Service is a running randomness beacon. Create with New or Resume; all
// exported methods are safe for concurrent use.
type Service struct {
	cfg     Config
	n       int
	gens    []*core.Generator
	nw      *simnet.Network
	cmds    []chan command
	results chan workerResult
	// pools[i] is player i's fork of the root compute pool (nil when
	// Parallelism is off). All forks share the root's capacity tokens, so
	// the cluster never engages more than Parallelism cores at once.
	pools []*parallel.Pool

	reqs       chan *request
	refillDone chan *refillOutcome
	stop       chan struct{}
	execDone   chan struct{}

	limiter *tokenBucket
	resumed bool

	// Executive-owned state (no locking: only the exec goroutine touches
	// these after Start).
	refillInFlight bool
	dead           error

	// Stats mirrors, updated by the executive / request path.
	remaining        atomic.Int64
	coinsDelivered   atomic.Int64
	draws            atomic.Int64
	refills          atomic.Int64
	pipelinedRefills atomic.Int64
	blockingRefills  atomic.Int64
	blockedDraws     atomic.Int64
	overloaded       atomic.Int64
	rateLimited      atomic.Int64
	inFlight         atomic.Bool
	closed           atomic.Bool
}

// New creates and starts a beacon from a fresh one-time trusted-dealer
// seed of cfg.SeedCoins coins (the paper's Rabin-style setup, used once).
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	gens, err := core.SetupTrusted(cfg.Core, cfg.SeedCoins, cfg.Rand(0))
	if err != nil {
		return nil, err
	}
	return start(cfg, gens, false)
}

// Resume creates and starts a beacon from one restored store per player
// (see Persist / LoadStores). The trusted dealer is not consulted: the
// restored seed funds every future refill, exactly the §1.2 storage
// pattern.
func Resume(cfg Config, stores []*coin.Store) (*Service, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(stores) != cfg.Core.N {
		return nil, fmt.Errorf("beacon: %d restored stores for %d players", len(stores), cfg.Core.N)
	}
	gens := make([]*core.Generator, cfg.Core.N)
	for i, st := range stores {
		g, err := core.NewFromStore(cfg.Core, st)
		if err != nil {
			return nil, fmt.Errorf("beacon: player %d: %w", i, err)
		}
		gens[i] = g
	}
	return start(cfg, gens, true)
}

func start(cfg Config, gens []*core.Generator, resumed bool) (*Service, error) {
	n := cfg.Core.N
	opts := []simnet.Option{simnet.WithMaxRounds(serveMaxRounds)}
	if cfg.Counters != nil {
		opts = append(opts, simnet.WithCounters(cfg.Counters))
	}
	s := &Service{
		cfg:        cfg,
		n:          n,
		gens:       gens,
		nw:         simnet.New(n, opts...),
		cmds:       make([]chan command, n),
		results:    make(chan workerResult, n),
		reqs:       make(chan *request, cfg.QueueDepth),
		refillDone: make(chan *refillOutcome, 1),
		stop:       make(chan struct{}),
		execDone:   make(chan struct{}),
		resumed:    resumed,
		pools:      make([]*parallel.Pool, n),
	}
	for i := range s.pools {
		s.pools[i] = cfg.Core.Pool.Fork()
	}
	if cfg.Rate > 0 {
		s.limiter = newTokenBucket(cfg.Rate, cfg.Burst)
	}
	s.remaining.Store(int64(gens[0].Remaining()))
	cfg.Metrics.registerGauges(s)
	for i := 0; i < n; i++ {
		s.cmds[i] = make(chan command)
		go s.worker(i, s.nw.Node(i), cfg.Rand(i))
	}
	go s.exec()
	return s, nil
}

// Resumed reports whether the service was restored from persisted stores.
func (s *Service) Resumed() bool { return s.resumed }

// Stats returns a snapshot of the service's activity.
func (s *Service) Stats() Stats {
	st := Stats{
		QueueDepth:       len(s.reqs),
		Remaining:        int(s.remaining.Load()),
		CoinsDelivered:   s.coinsDelivered.Load(),
		Draws:            s.draws.Load(),
		Refills:          s.refills.Load(),
		PipelinedRefills: s.pipelinedRefills.Load(),
		BlockingRefills:  s.blockingRefills.Load(),
		BlockedDraws:     s.blockedDraws.Load(),
		Overloaded:       s.overloaded.Load(),
		RateLimited:      s.rateLimited.Load(),
		RefillInFlight:   s.inFlight.Load(),
		Resumed:          s.resumed,
	}
	if s.cfg.Counters != nil {
		st.Counters = s.cfg.Counters.Snapshot()
	}
	return st
}

// Draw returns one shared coin: a uniform element of GF(2^k).
func (s *Service) Draw(ctx context.Context) (gf2k.Element, error) {
	vals, _, err := s.draw(ctx, 1)
	if err != nil {
		return 0, err
	}
	return vals[0], nil
}

// DrawN returns n shared coins in one request, plus the sequence number of
// the first one: coins are numbered 0,1,2,… in the order this Service
// exposed them, so DrawN(ctx, 3) returning seq 17 means the caller holds
// coins 17, 18 and 19 of this beacon's stream. Batches are contiguous — the
// executive exposes all n coins in one coalesced sweep — which is what lets
// a front end serve per-cell verifiable positions without a round trip per
// coin. n must be in [1, MaxDrawBatch].
func (s *Service) DrawN(ctx context.Context, n int) ([]gf2k.Element, int64, error) {
	if n < 1 || n > MaxDrawBatch {
		return nil, 0, fmt.Errorf("beacon: batch size %d outside [1,%d]", n, MaxDrawBatch)
	}
	return s.draw(ctx, n)
}

// DrawBits returns nbits shared random bits packed LSB-first into
// ⌈nbits/8⌉ bytes (unused high bits zero). Each drawn coin contributes its
// full k bits: the coin F(0) is uniform over GF(2^k), so every bit of its
// representation is an unbiased shared coin. nbits must be in
// [1, MaxDrawBits].
func (s *Service) DrawBits(ctx context.Context, nbits int) ([]byte, error) {
	if nbits < 1 || nbits > MaxDrawBits {
		return nil, fmt.Errorf("beacon: bit count %d outside [1,%d]", nbits, MaxDrawBits)
	}
	k := s.cfg.Core.Field.K()
	vals, _, err := s.draw(ctx, (nbits+k-1)/k)
	if err != nil {
		return nil, err
	}
	out := make([]byte, (nbits+7)/8)
	for b := 0; b < nbits; b++ {
		bit := (uint64(vals[b/k]) >> (b % k)) & 1
		out[b/8] |= byte(bit << (b % 8))
	}
	return out, nil
}

// DrawMod returns a shared random value in [1, m], the 1-based reduction
// Coin-Gen's own leader election uses (Fig. 5 step 9). Unlike core.NextMod
// (which keeps the paper's raw reduction inside the protocol), the serving
// layer draws by rejection sampling, so the result is exactly uniform for
// every m — a draw landing in the ragged tail of [0, 2^k) is discarded and
// a fresh coin drawn. Each coin is a shared value, so every replica rejects
// the identical draws and consumes the identical coin count; the expected
// overhead is below one extra coin per call (acceptance > 1/2 always).
func (s *Service) DrawMod(ctx context.Context, m int) (int, error) {
	if m <= 0 {
		return 0, fmt.Errorf("beacon: invalid modulus %d", m)
	}
	k := uint(s.cfg.Core.Field.K())
	if k < 64 && uint64(m) > 1<<k {
		return 0, fmt.Errorf("beacon: modulus %d exceeds the field's %d-bit draw space", m, k)
	}
	if m == 1 {
		return 1, nil // the only outcome; no entropy to spend
	}
	for {
		vals, _, err := s.draw(ctx, 1)
		if err != nil {
			return 0, err
		}
		v := uint64(vals[0])
		if !modAccept(v, k, uint64(m)) {
			continue
		}
		l := int(v % uint64(m))
		if l == 0 {
			l = m
		}
		return l, nil
	}
}

// modAccept reports whether a k-bit draw v lies below the rejection cutoff
// for modulus m: the largest multiple of m not exceeding 2^k. Draws at or
// above the cutoff fall in the ragged tail whose residues would be
// overrepresented by one part in ⌊2^k/m⌋, so DrawMod rejects and redraws.
// Requires m ≥ 1 and (for k < 64) m ≤ 2^k.
func modAccept(v uint64, k uint, m uint64) bool {
	if k >= 64 {
		// 2^64 overflows uint64: compute 2^64 mod m as (MaxUint64 mod m + 1)
		// mod m and accept v < 2^64 − that remainder.
		rem := (^uint64(0)%m + 1) % m
		return rem == 0 || v <= ^uint64(0)-rem
	}
	space := uint64(1) << k
	return v < space-space%m
}

// draw enqueues a request for `need` coins and waits for the executive.
// The returned int64 is the stream sequence number of the first coin.
func (s *Service) draw(ctx context.Context, need int) ([]gf2k.Element, int64, error) {
	if s.closed.Load() {
		return nil, 0, ErrClosed
	}
	if s.limiter != nil && !s.limiter.allow() {
		s.rateLimited.Add(1)
		s.cfg.Metrics.rejected("rate-limited")
		return nil, 0, ErrRateLimited
	}
	// The disabled-metrics path must not pay for a clock read: time.Now is
	// taken only when a latency histogram will consume it.
	var t0 time.Time
	if s.cfg.Metrics != nil {
		t0 = time.Now()
	}
	req := &request{ctx: ctx, need: need, resp: make(chan drawResult, 1)}
	select {
	case s.reqs <- req:
	default:
		s.overloaded.Add(1)
		s.cfg.Metrics.rejected("overloaded")
		return nil, 0, ErrOverloaded
	}
	select {
	case r := <-req.resp:
		if r.err == nil {
			s.cfg.Metrics.observeDraw(t0, need)
		}
		return r.vals, r.seq, r.err
	case <-ctx.Done():
		// The executive may still expose coins for this request; the
		// buffered resp channel absorbs the late result.
		return nil, 0, ctx.Err()
	case <-s.execDone:
		select {
		case r := <-req.resp:
			if r.err == nil {
				s.cfg.Metrics.observeDraw(t0, need)
			}
			return r.vals, r.seq, r.err
		default:
			return nil, 0, ErrClosed
		}
	}
}

// Close shuts the service down gracefully: it stops accepting draws, waits
// for any in-flight mint and absorbs it (so no detached seed coin is ever
// lost), serves the requests already queued, and halts the cluster. After
// Close returns nil the stores are quiescent and may be persisted.
func (s *Service) Close(ctx context.Context) error {
	if s.closed.CompareAndSwap(false, true) {
		close(s.stop)
	}
	select {
	case <-s.execDone:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// --- protocol executive -------------------------------------------------------

// exec is the dedicated protocol goroutine: the only scheduler of lockstep
// work and the only mutator of the generators between commands.
func (s *Service) exec() {
	defer close(s.execDone)
	for {
		s.maybePipelineRefill()
		select {
		case req := <-s.reqs:
			s.serve(req)
		case out := <-s.refillDone:
			s.absorbRefill(out)
		case <-s.stop:
			s.drainAndStop()
			return
		}
	}
}

// serve coalesces queued requests up to the MaxBatch coin budget and
// exposes their coins in one lockstep sweep.
func (s *Service) serve(first *request) {
	batch := make([]*request, 0, 8)
	need := 0
	add := func(r *request) bool {
		if r.ctx.Err() != nil {
			r.resp <- drawResult{err: r.ctx.Err()}
			return false
		}
		batch = append(batch, r)
		need += r.need
		return true
	}
	add(first)
	for need < s.cfg.MaxBatch {
		select {
		case r := <-s.reqs:
			add(r)
		default:
			goto gathered
		}
	}
gathered:
	if len(batch) == 0 {
		return
	}
	if err := s.ensure(need, len(batch)); err != nil {
		for _, r := range batch {
			r.resp <- drawResult{err: err}
		}
		return
	}
	vals, err := s.commandExpose(need)
	if err != nil {
		s.fail(err)
		for _, r := range batch {
			r.resp <- drawResult{err: err}
		}
		return
	}
	off := 0
	for _, r := range batch {
		// coinsDelivered doubles as the stream cursor: every exposed coin is
		// handed to exactly one request in exposure order, so the counter's
		// value before this request IS the sequence number of its first
		// coin. Only the executive mutates it, so load-then-add is safe.
		r.resp <- drawResult{vals: vals[off : off+r.need], seq: s.coinsDelivered.Load()}
		off += r.need
		s.draws.Add(1)
		s.coinsDelivered.Add(int64(r.need))
	}
}

// ensure makes the store deep enough to expose `need` coins while keeping
// the blocking-refill budget (Threshold) intact. It prefers waiting for an
// in-flight mint, then starting one, and only as a last resort stalls the
// serving network with a blocking Coin-Gen. Any draw that reaches this
// slow path is accounted in BlockedDraws.
func (s *Service) ensure(need, nreqs int) error {
	if s.dead != nil {
		return s.dead
	}
	blocked := false
	for int(s.remaining.Load()) < need+s.cfg.Core.Threshold {
		if !blocked {
			blocked = true
			s.blockedDraws.Add(int64(nreqs))
			s.cfg.Metrics.blocked(nreqs)
		}
		switch {
		case s.refillInFlight:
			s.absorbRefill(<-s.refillDone)
		case s.canPipeline() && s.startPipelineRefill():
			// A mint is now in flight; the next iteration waits for it.
		default:
			var t0 time.Time
			if s.cfg.Metrics != nil {
				t0 = time.Now()
			}
			if err := s.commandRefill(); err != nil {
				s.fail(err)
				break
			}
			s.refills.Add(1)
			s.blockingRefills.Add(1)
			s.cfg.Metrics.refill("blocking")
			if s.cfg.Metrics != nil {
				s.cfg.Metrics.observeRefill("blocking", time.Since(t0).Seconds())
			}
		}
		if s.dead != nil {
			return s.dead
		}
	}
	return nil
}

// canPipeline reports whether an out-of-band refill could be funded right
// now without dropping the serving store below Threshold.
func (s *Service) canPipeline() bool {
	return s.cfg.Core.HighWater > 0 && !s.refillInFlight &&
		int(s.remaining.Load())-s.cfg.SeedReserve >= s.cfg.Core.Threshold
}

// maybePipelineRefill starts an ahead-of-demand mint when the store has
// fallen below the high-water mark.
func (s *Service) maybePipelineRefill() {
	if s.dead != nil || !s.canPipeline() || !s.gens[0].NeedsRefill() {
		return
	}
	s.startPipelineRefill()
}

// startPipelineRefill detaches a seed from every player's store tail and
// launches a Coin-Gen cluster on a dedicated network, reporting whether the
// mint is now in flight. The serving path keeps exposing from the store
// fronts while the mint runs.
func (s *Service) startPipelineRefill() bool {
	seeds := make([]*coin.Store, s.n)
	for i, g := range s.gens {
		st, err := g.DetachSeed(s.cfg.SeedReserve)
		if err != nil {
			// The stores are structurally identical, so a failure can only
			// hit player 0 before anything was detached — but reabsorb
			// defensively so no coin is ever stranded.
			for j := 0; j < i; j++ {
				for _, b := range seeds[j].Batches() {
					s.gens[j].AbsorbBatch(b) //nolint:errcheck // reinsert of a just-detached batch
				}
			}
			return false
		}
		seeds[i] = st
	}
	s.refillInFlight = true
	s.inFlight.Store(true)
	cfg := s.cfg
	n := s.n
	go func() {
		opts := []simnet.Option{simnet.WithMaxRounds(serveMaxRounds)}
		if cfg.Counters != nil {
			opts = append(opts, simnet.WithCounters(cfg.Counters))
		}
		if cfg.Tracer != nil {
			opts = append(opts, simnet.WithTracer(cfg.Tracer))
		}
		nwR := simnet.New(n, opts...)
		fns := make([]simnet.PlayerFunc, n)
		for i := 0; i < n; i++ {
			i := i
			// Each minting node computes on its own fork of the root pool:
			// the refill cluster and the serving path compete for the same
			// Parallelism-core budget instead of oversubscribing it.
			coreCfg := cfg.Core
			coreCfg.Pool = s.pools[i]
			fns[i] = func(nd *simnet.Node) (interface{}, error) {
				return core.Mint(coreCfg, nd, seeds[i], cfg.Rand(i))
			}
		}
		var t0 time.Time
		if cfg.Metrics != nil {
			t0 = time.Now()
		}
		out := &refillOutcome{seeds: seeds, mints: make([]*core.MintResult, n)}
		for i, r := range simnet.Run(nwR, fns) {
			if r.Err != nil {
				out.err = fmt.Errorf("beacon: pipelined refill, player %d: %w", i, r.Err)
				break
			}
			out.mints[i] = r.Value.(*core.MintResult)
		}
		if cfg.Metrics != nil {
			cfg.Metrics.observeRefill("pipelined", time.Since(t0).Seconds())
		}
		s.refillDone <- out
	}()
	return true
}

// absorbRefill merges a completed mint back into every player's store:
// first the unspent seed coins, then the fresh batch, in the same order at
// every player.
func (s *Service) absorbRefill(out *refillOutcome) {
	s.refillInFlight = false
	s.inFlight.Store(false)
	for i, g := range s.gens {
		for _, b := range out.seeds[i].Batches() {
			if b.Remaining() == 0 {
				continue
			}
			if err := g.AbsorbBatch(b); err != nil && out.err == nil {
				out.err = fmt.Errorf("beacon: absorb leftover seed, player %d: %w", i, err)
			}
		}
		if out.err == nil {
			if err := g.Absorb(out.mints[i]); err != nil {
				out.err = fmt.Errorf("beacon: absorb minted batch, player %d: %w", i, err)
			}
		}
	}
	s.syncRemaining()
	if out.err != nil {
		s.fail(out.err)
		return
	}
	s.refills.Add(1)
	s.pipelinedRefills.Add(1)
	s.cfg.Metrics.refill("pipelined")
}

// fail moves the service into a terminal error state: subsequent draws
// report the first error.
func (s *Service) fail(err error) {
	if s.dead == nil && err != nil {
		s.dead = err
	}
}

func (s *Service) syncRemaining() {
	s.remaining.Store(int64(s.gens[0].Remaining()))
}

// drainAndStop completes shutdown: absorb an in-flight mint, serve the
// queue, stop the workers.
func (s *Service) drainAndStop() {
	if s.refillInFlight {
		s.absorbRefill(<-s.refillDone)
	}
	for {
		select {
		case req := <-s.reqs:
			s.serve(req)
		default:
			for _, ch := range s.cmds {
				ch <- command{op: opStop}
			}
			return
		}
	}
}

// --- lockstep commands --------------------------------------------------------

// commandExpose has every worker expose k coins and returns player 0's
// values after checking unanimity across the cluster.
func (s *Service) commandExpose(k int) ([]gf2k.Element, error) {
	res := s.broadcast(command{op: opExpose, k: k})
	var vals []gf2k.Element
	for _, r := range res {
		if r.err != nil {
			return nil, fmt.Errorf("beacon: expose, player %d: %w", r.player, r.err)
		}
		if r.player == 0 {
			vals = r.vals
		}
	}
	for _, r := range res {
		for h := range r.vals {
			if r.vals[h] != vals[h] {
				return nil, fmt.Errorf("beacon: unanimity violated at player %d coin %d", r.player, h)
			}
		}
	}
	s.syncRemaining()
	return vals, nil
}

// commandRefill runs a blocking Coin-Gen on the serving network.
func (s *Service) commandRefill() error {
	for _, r := range s.broadcast(command{op: opRefill}) {
		if r.err != nil {
			return fmt.Errorf("beacon: blocking refill, player %d: %w", r.player, r.err)
		}
	}
	s.syncRemaining()
	return nil
}

// broadcast sends cmd to every worker and collects all n results.
func (s *Service) broadcast(cmd command) []workerResult {
	for _, ch := range s.cmds {
		ch <- cmd
	}
	out := make([]workerResult, 0, s.n)
	for len(out) < s.n {
		out = append(out, <-s.results)
	}
	return out
}

// worker is player i's protocol goroutine: it executes the executive's
// commands on its node, in lockstep with the other n−1 workers.
func (s *Service) worker(i int, nd *simnet.Node, rnd io.Reader) {
	g := s.gens[i]
	for cmd := range s.cmds[i] {
		switch cmd.op {
		case opExpose:
			vals := make([]gf2k.Element, 0, cmd.k)
			var err error
			for j := 0; j < cmd.k; j++ {
				// A dry store fails before consuming a round, so all
				// workers stay at the same round even on this path.
				v, e := g.Expose(nd)
				if e != nil {
					err = e
					break
				}
				vals = append(vals, v)
			}
			s.results <- workerResult{player: i, vals: vals, err: err}
		case opRefill:
			s.results <- workerResult{player: i, err: g.Refill(nd, rnd)}
		case opStop:
			nd.Halt()
			return
		}
	}
}
