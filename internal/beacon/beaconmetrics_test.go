package beacon

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs/prom"
	"repro/internal/simnet"
)

func scrapeRegistry(t *testing.T, r *prom.Registry) []prom.Sample {
	t.Helper()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := prom.ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, sb.String())
	}
	return samples
}

// TestServiceMetricsEndToEnd drains a metered pipelined service and checks
// the exported series against the Stats snapshot ground truth.
func TestServiceMetricsEndToEnd(t *testing.T) {
	reg := prom.NewRegistry()
	cfg := testConfig(t, 24, 6, 16)
	cfg.Metrics = NewServiceMetrics(reg)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const draws = 60
	for i := 0; i < draws; i++ {
		if _, err := s.Draw(ctx); err != nil {
			t.Fatalf("draw %d: %v", i, err)
		}
	}
	mustClose(t, s)
	st := s.Stats()

	samples := scrapeRegistry(t, reg)
	if v, ok := prom.Value(samples, "beacon_draws_total"); !ok || v != draws {
		t.Errorf("beacon_draws_total = %v, %v; want %d", v, ok, draws)
	}
	if v, ok := prom.Value(samples, "beacon_coins_delivered_total"); !ok || v != draws {
		t.Errorf("beacon_coins_delivered_total = %v, %v; want %d", v, ok, draws)
	}
	if v, ok := prom.Value(samples, "beacon_draw_latency_seconds_count"); !ok || v != draws {
		t.Errorf("draw latency count = %v, %v; want %d", v, ok, draws)
	}
	if p99 := prom.Quantile(samples, "beacon_draw_latency_seconds", 0.99); !(p99 >= 0) {
		t.Errorf("draw latency p99 = %v, want a finite value", p99)
	}
	if v, ok := prom.Value(samples, "beacon_refills_total", "kind", "pipelined"); !ok || v != float64(st.PipelinedRefills) {
		t.Errorf("refills{pipelined} = %v, %v; want %d", v, ok, st.PipelinedRefills)
	}
	if v, ok := prom.Value(samples, "beacon_refill_duration_seconds_count", "kind", "pipelined"); !ok || v < 2 {
		t.Errorf("refill duration count{pipelined} = %v, %v; want ≥ 2", v, ok)
	}
	if v, ok := prom.Value(samples, "beacon_store_remaining"); !ok || int(v) != st.Remaining {
		t.Errorf("beacon_store_remaining = %v, %v; want %d", v, ok, st.Remaining)
	}
	if v, ok := prom.Value(samples, "beacon_queue_depth"); !ok || v != 0 {
		t.Errorf("beacon_queue_depth = %v, %v; want 0 after drain", v, ok)
	}
	if v, ok := prom.Value(samples, "beacon_refill_in_flight"); !ok || v != 0 {
		t.Errorf("beacon_refill_in_flight = %v, %v; want 0 after close", v, ok)
	}
}

// TestServiceMetricsBlockingAndRejections covers the slow paths: a
// HighWater-0 service refills inline (kind=blocking, draws counted as
// blocked) and a rate-limited draw lands in beacon_rejected_total.
func TestServiceMetricsBlockingAndRejections(t *testing.T) {
	reg := prom.NewRegistry()
	cfg := testConfig(t, 24, 6, 0) // no pipeline: refills block the serving network
	cfg.Metrics = NewServiceMetrics(reg)
	cfg.Rate = 0.000001 // one token, never replenished within the test
	cfg.Burst = 40
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	drawsOK := 0
	for i := 0; i < cfg.Burst+1; i++ {
		_, err := s.Draw(ctx)
		switch err {
		case nil:
			drawsOK++
		case ErrRateLimited:
		default:
			t.Fatalf("draw %d: %v", i, err)
		}
	}
	mustClose(t, s)
	st := s.Stats()
	if st.BlockingRefills < 1 || st.BlockedDraws < 1 {
		t.Fatalf("test did not exercise the blocking path: %+v", st)
	}

	samples := scrapeRegistry(t, reg)
	if v, ok := prom.Value(samples, "beacon_refills_total", "kind", "blocking"); !ok || v != float64(st.BlockingRefills) {
		t.Errorf("refills{blocking} = %v, %v; want %d", v, ok, st.BlockingRefills)
	}
	if v, ok := prom.Value(samples, "beacon_refill_duration_seconds_count", "kind", "blocking"); !ok || v != float64(st.BlockingRefills) {
		t.Errorf("refill duration count{blocking} = %v, %v; want %d", v, ok, st.BlockingRefills)
	}
	if v, ok := prom.Value(samples, "beacon_blocked_draws_total"); !ok || v != float64(st.BlockedDraws) {
		t.Errorf("blocked draws = %v, %v; want %d", v, ok, st.BlockedDraws)
	}
	if v, ok := prom.Value(samples, "beacon_rejected_total", "reason", "rate-limited"); !ok || v != float64(st.RateLimited) || v < 1 {
		t.Errorf("rejected{rate-limited} = %v, %v; want %d ≥ 1", v, ok, st.RateLimited)
	}
	if v, ok := prom.Value(samples, "beacon_draws_total"); !ok || v != float64(drawsOK) {
		t.Errorf("draws = %v, %v; want %d", v, ok, drawsOK)
	}
}

// TestDaemonMetricsEndToEnd runs a metered 7-daemon cluster across a refill
// boundary and checks player 0's registry: position gauges, emit/refill
// series, and the peer-transport epoch gauges fed by the daemon's
// SetEpoch hook.
func TestDaemonMetricsEndToEnd(t *testing.T) {
	const n, emit = 7, 30
	pc := testPeerConfig(t, n, 1, 24, 6, 24)
	base := t.TempDir()
	dirs := make([]string, n)
	for i := range dirs {
		dirs[i] = filepath.Join(base, fmt.Sprintf("p%d", i))
	}
	ceremony := filepath.Join(base, "deal")
	if err := DealCluster(pc, ceremony, rand.New(rand.NewSource(99))); err != nil {
		t.Fatalf("DealCluster: %v", err)
	}
	scatterStateDirs(t, ceremony, dirs)

	regs := make([]*prom.Registry, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		regs[i] = prom.NewRegistry()
		d, err := NewDaemon(DaemonConfig{
			Peers:          pc,
			Self:           i,
			StateDir:       dirs[i],
			Emit:           emit,
			Rand:           rand.New(rand.NewSource(7 + int64(i)*1009)),
			RoundTimeout:   2 * time.Second,
			DialBackoffMax: 200 * time.Millisecond,
			JoinTimeout:    20 * time.Second,
			Metrics:        NewDaemonMetrics(regs[i]),
			PeerMetrics:    simnet.NewPeerMetrics(regs[i]),
		})
		if err != nil {
			t.Fatalf("player %d: NewDaemon: %v", i, err)
		}
		wg.Add(1)
		go func(i int, d *Daemon) {
			defer wg.Done()
			errs[i] = d.Run(context.Background())
		}(i, d)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("player %d: %v", i, err)
		}
	}

	samples := scrapeRegistry(t, regs[0])
	for name, want := range map[string]float64{
		"beacond_coins_total":                   emit,
		"beacond_log_len":                       emit,
		"beacond_epoch":                         1, // seed 24, threshold 6: exactly one refill before coin 30
		"beacond_joined":                        1,
		"beacond_refilling":                     0,
		"beacond_emit_latency_seconds_count":    emit,
		"beacond_refills_total":                 1,
		"beacond_refill_duration_seconds_count": 1,
	} {
		if v, ok := prom.Value(samples, name); !ok || v != want {
			t.Errorf("%s = %v, %v; want %v", name, v, ok, want)
		}
	}
	if v, ok := prom.Value(samples, "beacond_round"); !ok || v < emit {
		t.Errorf("beacond_round = %v, %v; want ≥ %d (exposure + refill rounds)", v, ok, emit)
	}
	if v, ok := prom.Value(samples, "beacond_join_attempts_total"); !ok || v < 1 {
		t.Errorf("join attempts = %v, %v; want ≥ 1", v, ok)
	}
	// The refill bumped the epoch to 1 and the daemon re-stamped the
	// transport, so post-refill done frames announced epoch 1 cluster-wide.
	for _, peer := range []string{"1", "3", "6"} {
		if v, ok := prom.Value(samples, "simnet_peer_epoch", "peer", peer); !ok || v != 1 {
			t.Errorf("simnet_peer_epoch{peer=%s} = %v, %v; want 1", peer, v, ok)
		}
	}
}

// TestServiceMetricsZeroAlloc pins the instrumentation cost contract: the
// disabled (nil) helpers allocate nothing, and the live observation path —
// histogram observe, counter bumps, vec child lookups — allocates nothing
// either, so enabling metrics adds no allocations to the draw hot path.
func TestServiceMetricsZeroAlloc(t *testing.T) {
	var off *ServiceMetrics
	var offD *DaemonMetrics
	t0 := time.Now()
	if allocs := testing.AllocsPerRun(1000, func() {
		off.observeDraw(t0, 1)
		off.rejected("rate-limited")
		off.blocked(3)
		off.refill("pipelined")
		off.observeRefill("blocking", 0.5)
		offD.joinAttempt()
		offD.observeEmit(0.01, 1)
	}); allocs != 0 {
		t.Fatalf("disabled metrics path allocates %v per draw, want 0", allocs)
	}
	on := NewServiceMetrics(prom.NewRegistry())
	onD := NewDaemonMetrics(prom.NewRegistry())
	if allocs := testing.AllocsPerRun(1000, func() {
		on.observeDraw(t0, 1)
		on.rejected("rate-limited")
		on.blocked(3)
		on.refill("pipelined")
		on.observeRefill("blocking", 0.5)
		onD.joinAttempt()
		onD.observeEmit(0.01, 1)
	}); allocs != 0 {
		t.Fatalf("live metrics path allocates %v per draw, want 0", allocs)
	}
}
