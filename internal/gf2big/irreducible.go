package gf2big

import (
	"fmt"
	"math/bits"
)

// knownTaps are sparse irreducible polynomials for common benchmark
// degrees. Every entry is verified with the Rabin test at construction, so
// a wrong entry degrades to a search, never to silent misbehaviour.
var knownTaps = map[int][]int{
	128:  {7, 2, 1, 0},
	192:  {7, 2, 1, 0},
	256:  {10, 5, 2, 0},
	384:  {12, 3, 2, 0},
	512:  {8, 5, 2, 0},
	768:  {19, 17, 4, 0},
	1024: {19, 6, 1, 0},
	2048: {19, 14, 13, 0},
	4096: {27, 15, 1, 0},
	8192: {9, 5, 2, 0},
}

// findSparseIrreducible locates a sparse irreducible modulus for degree k:
// first a known candidate, then trinomials x^k + x^a + 1, then pentanomials
// x^k + x^a + x^b + x^c + 1 with small a > b > c ≥ 1. Candidates pass a
// small-degree-factor screen before the full Rabin test.
func (f *Field) findSparseIrreducible() ([]int, error) {
	if taps, ok := knownTaps[f.k]; ok && f.isIrreducible(taps) {
		return taps, nil
	}
	// Trinomials (none exist when k ≡ 0 mod 8, skip the scan then).
	if f.k%8 != 0 {
		for a := 1; a < f.k; a++ {
			taps := []int{a, 0}
			if !f.screen(taps) {
				continue
			}
			if f.isIrreducible(taps) {
				return taps, nil
			}
		}
	}
	// Pentanomials with small terms.
	for a := 3; a <= 64 && a < f.k; a++ {
		for b := 2; b < a; b++ {
			for c := 1; c < b; c++ {
				taps := []int{a, b, c, 0}
				if !f.screen(taps) {
					continue
				}
				if f.isIrreducible(taps) {
					return taps, nil
				}
			}
		}
	}
	return nil, fmt.Errorf("gf2big: no sparse irreducible polynomial found for degree %d", f.k)
}

// screen cheaply rejects candidates with an irreducible factor of degree
// ≤ 12: gcd(x^(2^j) − x, f) must be trivial for each j.
func (f *Field) screen(taps []int) bool {
	g := f.withTaps(taps)
	u := g.One()
	setBit(u, 1) // u = x... (x has bit 1)
	u[0] &^= 1   // clear the stray constant from One()
	x := append(Element(nil), u...)
	for j := 1; j <= 12 && j < f.k; j++ {
		u = g.Sqr(u)
		if !g.gcdWithModulusIsOne(g.Add(u, x)) {
			return false
		}
	}
	return true
}

// isIrreducible is Rabin's test for f = x^k + Σ x^taps: x^(2^k) ≡ x mod f
// and gcd(x^(2^(k/p)) − x, f) = 1 for every prime p | k.
func (f *Field) isIrreducible(taps []int) bool {
	for _, t := range taps[:len(taps)-1] {
		if t <= 0 || t >= f.k {
			return false
		}
	}
	g := f.withTaps(taps)
	x := g.Zero()
	setBit(x, 1)
	checkpoints := make(map[int]bool)
	for _, p := range primeDivisors(f.k) {
		checkpoints[f.k/p] = true
	}
	u := append(Element(nil), x...)
	for j := 1; j <= f.k; j++ {
		u = g.Sqr(u)
		if checkpoints[j] {
			if !g.gcdWithModulusIsOne(g.Add(u, x)) {
				return false
			}
		}
	}
	return g.Equal(u, x)
}

// withTaps returns a shallow field using the candidate modulus (for use
// during the search, before f.taps is fixed).
func (f *Field) withTaps(taps []int) *Field {
	return &Field{k: f.k, words: f.words, taps: taps}
}

// gcdWithModulusIsOne reports gcd(h, modulus) == 1 for h of degree < k.
// The first Euclid step reduces the (sparse, degree-k) modulus by h; the
// rest is a plain binary-polynomial gcd.
func (f *Field) gcdWithModulusIsOne(h Element) bool {
	if f.IsZero(h) {
		return false // gcd = modulus, not 1
	}
	// modulus mod h: start from x^k mod h then add the taps.
	// x^k mod h: fold x^k with repeated shifts of h.
	dh := deg(h)
	rem := make([]uint64, f.words+1)
	setBitSlice(rem, f.k)
	for _, t := range f.taps {
		flipBitSlice(rem, t)
	}
	for {
		d := deg(rem)
		if d < dh {
			break
		}
		xorShifted(rem, h, d-dh)
	}
	a := make(Element, f.words)
	copy(a, rem[:f.words])
	b := append(Element(nil), h...)
	// gcd(a, b) with deg a < deg b initially... loop invariant-free binary
	// long division gcd.
	for !f.IsZero(a) {
		da, db := deg(a), deg(b)
		if da < db {
			a, b = b, a
			da, db = db, da
		}
		for da >= db && da >= 0 {
			xorShifted(a, b, da-db)
			da = deg(a)
		}
	}
	return deg(b) == 0 // gcd is the constant 1
}

func setBit(e Element, i int) {
	e[i/64] |= uint64(1) << (i % 64)
}

func setBitSlice(v []uint64, i int) {
	v[i/64] |= uint64(1) << (i % 64)
}

func flipBitSlice(v []uint64, i int) {
	v[i/64] ^= uint64(1) << (i % 64)
}

func primeDivisors(n int) []int {
	var out []int
	for p := 2; p*p <= n; p++ {
		if n%p == 0 {
			out = append(out, p)
			for n%p == 0 {
				n /= p
			}
		}
	}
	if n > 1 {
		out = append(out, n)
	}
	return out
}

var _ = bits.LeadingZeros64
