package ba

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/simnet"
)

// runBA executes phase-king with the given honest inputs; faulty players run
// the supplied adversary functions instead.
func runBA(t *testing.T, tf int, inputs []byte, faulty map[int]simnet.PlayerFunc) []simnet.PlayerResult {
	t.Helper()
	n := len(inputs)
	nw := simnet.New(n)
	fns := make([]simnet.PlayerFunc, n)
	for i := 0; i < n; i++ {
		if f, ok := faulty[i]; ok {
			fns[i] = f
			continue
		}
		in := inputs[i]
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			return PhaseKing{T: tf}.Run(nd, in)
		}
	}
	return simnet.Run(nw, fns)
}

func checkAgreementValidity(t *testing.T, results []simnet.PlayerResult, faulty map[int]simnet.PlayerFunc, inputs []byte) byte {
	t.Helper()
	decided := byte(0xff)
	for i, r := range results {
		if _, isFaulty := faulty[i]; isFaulty {
			continue
		}
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		v := r.Value.(byte)
		if decided == 0xff {
			decided = v
		} else if v != decided {
			t.Fatalf("agreement violated: player %d decided %d, others %d", i, v, decided)
		}
	}
	// Validity: if all honest inputs equal, the decision must equal them.
	allSame, common := true, byte(0xff)
	for i, in := range inputs {
		if _, isFaulty := faulty[i]; isFaulty {
			continue
		}
		if common == 0xff {
			common = in
		} else if in != common {
			allSame = false
		}
	}
	if allSame && decided != common {
		t.Fatalf("validity violated: all honest inputs %d but decided %d", common, decided)
	}
	return decided
}

func TestAllZero(t *testing.T) {
	inputs := make([]byte, 6)
	results := runBA(t, 1, inputs, nil)
	if got := checkAgreementValidity(t, results, nil, inputs); got != 0 {
		t.Fatalf("decided %d, want 0", got)
	}
}

func TestAllOne(t *testing.T) {
	inputs := []byte{1, 1, 1, 1, 1, 1}
	results := runBA(t, 1, inputs, nil)
	if got := checkAgreementValidity(t, results, nil, inputs); got != 1 {
		t.Fatalf("decided %d, want 1", got)
	}
}

func TestMixedInputsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		inputs := make([]byte, 6)
		for i := range inputs {
			inputs[i] = byte(rng.Intn(2))
		}
		results := runBA(t, 1, inputs, nil)
		checkAgreementValidity(t, results, nil, inputs)
	}
}

// byzantineBA sends maximally confusing values: to each receiver a different
// bit in round A, and (as king) different bits in round B.
func byzantineBA(tf int, seed int64) simnet.PlayerFunc {
	return func(nd *simnet.Node) (interface{}, error) {
		rng := rand.New(rand.NewSource(seed + int64(nd.Index())))
		n := nd.N()
		for phase := 0; phase <= tf; phase++ {
			for j := 0; j < n; j++ {
				if j == nd.Index() {
					continue
				}
				nd.Send(j, []byte{byte(rng.Intn(2))})
			}
			if _, err := nd.EndRound(); err != nil {
				return nil, err
			}
			// Round B: equivocate as king too (harmless if not king).
			for j := 0; j < n; j++ {
				if j == nd.Index() {
					continue
				}
				nd.Send(j, []byte{byte(rng.Intn(2))})
			}
			if _, err := nd.EndRound(); err != nil {
				return nil, err
			}
		}
		return byte(0), nil
	}
}

func TestByzantineFaultsAgreement(t *testing.T) {
	// n = 11, t = 2 (n ≥ 5t+1): two Byzantine players, including one that
	// will be king in phase 0, cannot break agreement or validity.
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n, tf := 11, 2
		inputs := make([]byte, n)
		for i := range inputs {
			inputs[i] = byte(rng.Intn(2))
		}
		faulty := map[int]simnet.PlayerFunc{
			0: byzantineBA(tf, int64(trial)*13),
			7: byzantineBA(tf, int64(trial)*29),
		}
		results := runBA(t, tf, inputs, faulty)
		checkAgreementValidity(t, results, faulty, inputs)
	}
}

func TestByzantineFaultsValidityPressure(t *testing.T) {
	// All honest players input 1; adversaries push 0 hard. Validity demands
	// the decision be 1.
	n, tf := 11, 2
	inputs := make([]byte, n)
	for i := range inputs {
		inputs[i] = 1
	}
	pushZero := func(nd *simnet.Node) (interface{}, error) {
		for phase := 0; phase <= tf; phase++ {
			for r := 0; r < 2; r++ {
				nd.SendAll([]byte{0})
				if _, err := nd.EndRound(); err != nil {
					return nil, err
				}
			}
		}
		return byte(0), nil
	}
	faulty := map[int]simnet.PlayerFunc{0: pushZero, 5: pushZero}
	results := runBA(t, tf, inputs, faulty)
	if got := checkAgreementValidity(t, results, faulty, inputs); got != 1 {
		t.Fatalf("decided %d under adversarial pressure, want 1", got)
	}
}

func TestCrashFaults(t *testing.T) {
	// Crashed players (halt immediately) are a special case of Byzantine.
	n, tf := 11, 2
	rng := rand.New(rand.NewSource(77))
	crash := func(nd *simnet.Node) (interface{}, error) { return byte(0), nil }
	for trial := 0; trial < 10; trial++ {
		inputs := make([]byte, n)
		for i := range inputs {
			inputs[i] = byte(rng.Intn(2))
		}
		faulty := map[int]simnet.PlayerFunc{2: crash, 9: crash}
		results := runBA(t, tf, inputs, faulty)
		checkAgreementValidity(t, results, faulty, inputs)
	}
}

func TestRoundsExact(t *testing.T) {
	n, tf := 6, 1
	nw := simnet.New(n)
	fns := make([]simnet.PlayerFunc, n)
	for i := 0; i < n; i++ {
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			if _, err := (PhaseKing{T: tf}).Run(nd, 1); err != nil {
				return nil, err
			}
			return nd.Round(), nil
		}
	}
	want := PhaseKing{T: tf}.Rounds()
	for i, r := range simnet.Run(nw, fns) {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		if r.Value.(int) != want {
			t.Fatalf("player %d: %v rounds, want %d", i, r.Value, want)
		}
	}
}

func TestInputValidation(t *testing.T) {
	nw := simnet.New(6)
	fns := make([]simnet.PlayerFunc, 6)
	for i := range fns {
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			if _, err := (PhaseKing{T: 1}).Run(nd, 2); err == nil {
				return nil, fmt.Errorf("input 2 accepted")
			}
			return nil, nil
		}
	}
	for i, r := range simnet.Run(nw, fns) {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
	}
	// Too-small network.
	nw2 := simnet.New(5)
	fns2 := make([]simnet.PlayerFunc, 5)
	for i := range fns2 {
		fns2[i] = func(nd *simnet.Node) (interface{}, error) {
			if _, err := (PhaseKing{T: 1}).Run(nd, 0); err == nil {
				return nil, fmt.Errorf("n=5,t=1 accepted (needs 6)")
			}
			return nil, nil
		}
	}
	for i, r := range simnet.Run(nw2, fns2) {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
	}
}

func TestSequentialAgreements(t *testing.T) {
	// Coin-Gen may re-run BA several times (Fig. 5 step 11); verify repeated
	// executions on the same network stay in lockstep.
	n, tf := 6, 1
	nw := simnet.New(n)
	fns := make([]simnet.PlayerFunc, n)
	for i := 0; i < n; i++ {
		in := byte(i % 2)
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			var outs []byte
			v := in
			for rep := 0; rep < 3; rep++ {
				got, err := (PhaseKing{T: tf}).Run(nd, v)
				if err != nil {
					return nil, err
				}
				outs = append(outs, got)
				v = 1 - got // alternate inputs, still common across honest
			}
			return outs, nil
		}
	}
	results := simnet.Run(nw, fns)
	first := results[0].Value.([]byte)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		got := r.Value.([]byte)
		for rep := range first {
			if got[rep] != first[rep] {
				t.Fatalf("repetition %d: player %d decided %d, player 0 decided %d", rep, i, got[rep], first[rep])
			}
		}
	}
}
