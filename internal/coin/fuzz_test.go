package coin

import (
	"math/rand"
	"testing"

	"repro/internal/gf2k"
)

// FuzzUnmarshalBatch: the batch decoder must never panic, and everything it
// accepts must survive a marshal/unmarshal round trip unchanged.
func FuzzUnmarshalBatch(f *testing.F) {
	field := gf2k.MustNew(16)
	rng := rand.New(rand.NewSource(1))
	batches, _, err := DealTrusted(field, 4, 1, 3, rng)
	if err != nil {
		f.Fatal(err)
	}
	good, err := batches[0].MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte(batchMagic))
	f.Add(append([]byte{}, good[:len(good)-1]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := UnmarshalBatch(data)
		if err != nil {
			return
		}
		re, err := b.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted batch fails to re-marshal: %v", err)
		}
		b2, err := UnmarshalBatch(re)
		if err != nil {
			t.Fatalf("re-marshalled batch rejected: %v", err)
		}
		if b2.T != b.T || b2.Silent != b.Silent || len(b2.S) != len(b.S) ||
			len(b2.Shares) != len(b.Shares) || b2.Cursor() != b.Cursor() {
			t.Fatal("round trip not idempotent")
		}
	})
}

// FuzzUnmarshalStore: the store decoder (the beacon's on-disk restart
// format) must never panic, and everything it accepts must re-marshal to
// the same bytes — a restored-then-persisted store is a fixed point.
func FuzzUnmarshalStore(f *testing.F) {
	field := gf2k.MustNew(16)
	rng := rand.New(rand.NewSource(2))
	st := &Store{}
	for s := 0; s < 2; s++ {
		batches, _, err := DealTrusted(field, 4, 1, 2, rng)
		if err != nil {
			f.Fatal(err)
		}
		if err := st.Add(batches[0]); err != nil {
			f.Fatal(err)
		}
	}
	good, err := st.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte(storeMagic))
	f.Add(append([]byte{}, good[:len(good)-1]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := UnmarshalStore(data)
		if err != nil {
			return
		}
		re, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted store fails to re-marshal: %v", err)
		}
		if string(re) != string(data) {
			t.Fatal("accepted store encoding is not canonical")
		}
	})
}
