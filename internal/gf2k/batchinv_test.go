package gf2k

import (
	"math/rand"
	"testing"

	"repro/internal/metrics"
)

func TestBatchInvMatchesInv(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, k := range []int{8, 32, 64} {
		f := MustNew(k)
		for _, n := range []int{0, 1, 2, 17, 64} {
			a := make([]Element, n)
			for i := range a {
				for a[i] == 0 {
					v, err := f.Rand(rng)
					if err != nil {
						t.Fatal(err)
					}
					a[i] = v
				}
			}
			inv, err := f.BatchInv(a)
			if err != nil {
				t.Fatalf("k=%d n=%d: %v", k, n, err)
			}
			for i := range a {
				if want := f.Inv(a[i]); inv[i] != want {
					t.Fatalf("k=%d n=%d i=%d: %#x vs %#x", k, n, i, inv[i], want)
				}
			}
		}
	}
}

func TestBatchInvZero(t *testing.T) {
	f := MustNew(16)
	if _, err := f.BatchInv([]Element{1, 0, 3}); err == nil {
		t.Fatal("BatchInv with a zero element should fail")
	}
}

// TestBatchInvCost pins the advertised accounting: exactly one inversion
// and 3(n−1) multiplications.
func TestBatchInvCost(t *testing.T) {
	const n = 16
	var ctr metrics.Counters
	f := MustNew(32).WithCounters(&ctr)
	a := make([]Element, n)
	for i := range a {
		a[i] = Element(i + 1)
	}
	before := ctr.Snapshot()
	if _, err := f.BatchInv(a); err != nil {
		t.Fatal(err)
	}
	d := metrics.Diff(before, ctr.Snapshot())
	if d.FieldInvs != 1 {
		t.Fatalf("BatchInv performed %d inversions, want 1", d.FieldInvs)
	}
	if d.FieldMuls != 3*(n-1) {
		t.Fatalf("BatchInv performed %d multiplications, want %d", d.FieldMuls, 3*(n-1))
	}
}
