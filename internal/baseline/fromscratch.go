package baseline

import (
	"fmt"
	"io"

	"repro/internal/bw"
	"repro/internal/gf2k"
	"repro/internal/metrics"
	"repro/internal/poly"
	"repro/internal/simnet"
)

// FromScratchConfig parameterizes from-scratch coin generation.
type FromScratchConfig struct {
	// Field is GF(2^k).
	Field gf2k.Field
	// N, T: players and fault bound, N ≥ 3T+1.
	N, T int
	// Kappa is the per-dealer cut-and-choose security (error 2^−κ).
	Kappa int
	// Counters records costs when non-nil.
	Counters *metrics.Counters
}

// FromScratchCoin generates ONE shared random coin with no pre-existing
// sealed coins — the "from scratch" cost the D-PRBG's amortization is
// compared against (§1.1: "A distributed coin is expensive to produce. If
// we need lots of them, it would be a lot of work to produce each one
// individually from scratch"). Every player contributes a secret, every
// contribution is cut-and-choose verified (no challenge coin exists yet, so
// the challenges come from jointly XOR-ed broadcast bits), and the
// survivors' contributions are summed and opened.
//
// Per coin this costs four rounds, Θ(n·κ) interpolations per player and
// Θ(n²·κ·k) communicated bits — against the D-PRBG's amortized single
// interpolation and Θ(n) messages (Corollary 3).
//
// Returns the coin (identical at every honest player).
func FromScratchCoin(nd *simnet.Node, cfg FromScratchConfig, rnd io.Reader) (gf2k.Element, error) {
	if cfg.N < 3*cfg.T+1 {
		return 0, fmt.Errorf("baseline: need n ≥ 3t+1, got n=%d t=%d", cfg.N, cfg.T)
	}
	if cfg.Kappa < 1 {
		return 0, fmt.Errorf("baseline: kappa must be ≥ 1, got %d", cfg.Kappa)
	}
	f := cfg.Field
	n, t, kappa := cfg.N, cfg.T, cfg.Kappa
	me := nd.Index()

	// Round 1: every player deals its contribution + κ masks.
	myPolys := make([]poly.Poly, kappa+1)
	for j := range myPolys {
		secret, err := f.Rand(rnd)
		if err != nil {
			return 0, err
		}
		p, err := poly.Random(f, t, secret, rnd)
		if err != nil {
			return 0, err
		}
		myPolys[j] = p
	}
	for i := 0; i < n; i++ {
		if i == me {
			continue
		}
		id, err := f.ElementFromID(i + 1)
		if err != nil {
			return 0, err
		}
		buf := make([]byte, 0, (kappa+1)*f.ByteLen())
		for _, p := range myPolys {
			buf = f.AppendElement(buf, poly.Eval(f, p, id))
		}
		nd.Send(i, buf)
	}
	msgs, err := nd.EndRound()
	if err != nil {
		return 0, err
	}
	// shares[d][j]: my share of dealer d's polynomial j (0 = contribution).
	shares := make([][]gf2k.Element, n)
	ownID, err := f.ElementFromID(me + 1)
	if err != nil {
		return 0, err
	}
	own := make([]gf2k.Element, kappa+1)
	for j, p := range myPolys {
		own[j] = poly.Eval(f, p, ownID)
	}
	shares[me] = own
	for d, payload := range simnet.FirstFromEach(msgs) {
		if s, rest, err := f.ReadElements(payload, kappa+1); err == nil && len(rest) == 0 {
			shares[d] = s
		}
	}

	// Round 2: joint challenge bits (shared across all dealers).
	myBits := make([]byte, (kappa+7)/8)
	if _, err := io.ReadFull(rnd, myBits); err != nil {
		return 0, err
	}
	nd.Broadcast(myBits)
	msgs, err = nd.EndRound()
	if err != nil {
		return 0, err
	}
	challenge := make([]byte, (kappa+7)/8)
	for _, payload := range simnet.FirstFromEach(msgs) {
		if len(payload) != len(challenge) {
			continue
		}
		for i := range challenge {
			challenge[i] ^= payload[i]
		}
	}
	bit := func(j int) bool { return challenge[j/8]>>(j%8)&1 == 1 }

	// Round 3: open masked polynomials for every dealer. Per dealer: one
	// complaint flag + κ opened shares.
	buf := make([]byte, 0, n*(1+kappa*f.ByteLen()))
	for d := 0; d < n; d++ {
		if shares[d] == nil {
			buf = append(buf, 1)
			buf = append(buf, make([]byte, kappa*f.ByteLen())...)
			continue
		}
		buf = append(buf, 0)
		for j := 1; j <= kappa; j++ {
			v := shares[d][j]
			if bit(j - 1) {
				v = f.Add(v, shares[d][0])
			}
			buf = f.AppendElement(buf, v)
		}
	}
	nd.Broadcast(buf)
	msgs, err = nd.EndRound()
	if err != nil {
		return 0, err
	}

	entry := 1 + kappa*f.ByteLen()
	type opening struct {
		complaint bool
		vals      []gf2k.Element
	}
	openings := make(map[int][]opening, n) // by opener
	for from, payload := range simnet.FirstFromEach(msgs) {
		if len(payload) != n*entry {
			continue
		}
		rows := make([]opening, n)
		okAll := true
		for d := 0; d < n; d++ {
			rec := payload[d*entry : (d+1)*entry]
			vals, rest, err := f.ReadElements(rec[1:], kappa)
			if err != nil || len(rest) != 0 {
				okAll = false
				break
			}
			rows[d] = opening{complaint: rec[0] != 0, vals: vals}
		}
		if okAll {
			openings[from] = rows
		}
	}

	// Decide the accepted dealer set (identical everywhere: pure function
	// of broadcasts).
	accepted := make([]bool, n)
	for d := 0; d < n; d++ {
		complaints := 0
		var xs []gf2k.Element
		var ys [][]gf2k.Element // per mask j
		for from := 0; from < n; from++ {
			rows, ok := openings[from]
			if !ok || rows[d].complaint {
				complaints++
				continue
			}
			id, err := f.ElementFromID(from + 1)
			if err != nil {
				continue
			}
			xs = append(xs, id)
			ys = append(ys, rows[d].vals)
		}
		if complaints > t {
			continue
		}
		budget := t - complaints
		ok := true
		for j := 0; j < kappa && ok; j++ {
			col := make([]gf2k.Element, len(xs))
			for i := range xs {
				col[i] = ys[i][j]
			}
			if _, err := bw.Decode(f, xs, col, t, budget, cfg.Counters); err != nil {
				ok = false
			}
		}
		accepted[d] = ok
	}

	// Round 4: open the summed contribution of accepted dealers.
	var sum gf2k.Element
	complete := true
	for d := 0; d < n; d++ {
		if !accepted[d] {
			continue
		}
		if shares[d] == nil {
			complete = false
			continue
		}
		sum = f.Add(sum, shares[d][0])
	}
	if complete {
		nd.Broadcast(append([]byte{0}, f.AppendElement(nil, sum)...))
	} else {
		nd.Broadcast([]byte{1})
	}
	msgs, err = nd.EndRound()
	if err != nil {
		return 0, err
	}
	var xs, ys []gf2k.Element
	for from, payload := range simnet.FirstFromEach(msgs) {
		if len(payload) < 1 || payload[0] != 0 {
			continue
		}
		v, rest, err := f.ReadElement(payload[1:])
		if err != nil || len(rest) != 0 {
			continue
		}
		id, err := f.ElementFromID(from + 1)
		if err != nil {
			continue
		}
		xs = append(xs, id)
		ys = append(ys, v)
	}
	maxErr := (len(xs) - t - 1) / 2
	if maxErr > t {
		maxErr = t
	}
	if maxErr < 0 {
		maxErr = 0
	}
	res, err := bw.Decode(f, xs, ys, t, maxErr, cfg.Counters)
	if err != nil {
		return 0, fmt.Errorf("baseline: coin reconstruction: %w", err)
	}
	return poly.Eval(f, res.Poly, 0), nil
}
