package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestRunFlagValidation exercises the up-front flag validation: every bad
// combination must fail before any protocol work with a message naming the
// offending flag.
func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"negative t", []string{"-t", "-1"}, "-t must be ≥ 0"},
		{"n below 6t+1", []string{"-n", "12", "-t", "2"}, "n ≥ 6t+1"},
		{"k too small", []string{"-k", "1"}, "-k must be in [2, 64]"},
		{"k too large", []string{"-k", "65"}, "-k must be in [2, 64]"},
		{"zero coins", []string{"-coins", "0"}, "-coins must be ≥ 1"},
		{"zero batch", []string{"-batch", "0"}, "-batch must be ≥ 1"},
		{"batch below threshold", []string{"-batch", "5"}, "must exceed the refill threshold"},
		{"seed below threshold", []string{"-seed", "3"}, "below the refill threshold"},
		{"crash not a number", []string{"-crash", "x"}, "not an integer"},
		{"crash out of range", []string{"-crash", "7"}, "range over [0, 7)"},
		{"crash negative", []string{"-crash", "-1"}, "range over [0, 7)"},
		{"crash duplicate", []string{"-crash", "0,0"}, "duplicate entry for player 0"},
		{"too many crashed", []string{"-n", "13", "-t", "2", "-crash", "0,1,2"}, "exceed the fault bound"},
		{"faults unknown behaviour", []string{"-faults", "teleport:1"}, "unknown behaviour"},
		{"faults missing indices", []string{"-faults", "crash"}, "lacks a ':<indices>' part"},
		{"faults missing param", []string{"-faults", "crash-after:1"}, "requires a parameter"},
		{"faults bad param", []string{"-faults", "silent@-3:1"}, "not a non-negative integer"},
		{"faults and crash collide", []string{"-faults", "silent:2", "-crash", "2"}, "duplicate entry for player 2"},
		{"faults over bound", []string{"-faults", "crash:1", "-crash", "2"}, "exceed the fault bound"},
		{"positional junk", []string{"extra"}, "unexpected positional arguments"},
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			err := run(tc.args, &out, &errb)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) && !strings.Contains(errb.String(), tc.wantErr) {
				t.Fatalf("run(%v) error = %q (stderr %q), want substring %q",
					tc.args, err, errb.String(), tc.wantErr)
			}
		})
	}
}

// TestRunHappyPath runs a tiny simulation end to end, with a JSONL trace and
// a timeline, and checks the artifacts: unanimous coins reported, the trace
// parses back, and the timeline names protocol phases.
func TestRunHappyPath(t *testing.T) {
	traceFile := filepath.Join(t.TempDir(), "trace.jsonl")
	var out, errb bytes.Buffer
	args := []string{
		"-n", "7", "-t", "1", "-k", "16", "-coins", "12", "-batch", "8",
		"-seed", "8", "-rngseed", "42", "-crash", "3",
		"-trace", traceFile, "-timeline",
	}
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("run(%v): %v\nstderr:\n%s", args, err, errb.String())
	}
	stdout := out.String()
	if !strings.Contains(stdout, "coins delivered:   12 (all honest players unanimous)") {
		t.Fatalf("missing unanimity line in output:\n%s", stdout)
	}
	for _, want := range []string{"--- timeline", "coingen", "gradecast", "coin-expose"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("timeline missing %q in output:\n%s", want, stdout)
		}
	}

	f, err := os.Open(traceFile)
	if err != nil {
		t.Fatalf("open trace: %v", err)
	}
	defer f.Close()
	events, err := obs.ParseJSONL(f)
	if err != nil {
		t.Fatalf("parse trace: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace is empty")
	}
	for i, e := range events {
		if e.Seq != uint64(i+1) {
			t.Fatalf("trace event %d has seq %d; export is not the full ordered stream", i, e.Seq)
		}
	}
	// The run refills at least once, so the trace must contain sealed and
	// exposed coins and a BA decision.
	seen := map[obs.EventType]bool{}
	for _, e := range events {
		seen[e.Type] = true
	}
	for _, want := range []obs.EventType{
		obs.EvSpanBegin, obs.EvSpanEnd, obs.EvRound, obs.EvSend,
		obs.EvDeliver, obs.EvClique, obs.EvLeader, obs.EvDecision,
		obs.EvCoinSealed, obs.EvCoinExposed,
	} {
		if !seen[want] {
			t.Fatalf("trace has no %v event", want)
		}
	}
}

// TestRunFaultSpec drives the full -faults vocabulary end to end: a garbage
// spammer is a live Byzantine player (not just an absent one), and the
// honest majority must still deliver unanimous coins around it.
func TestRunFaultSpec(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{
		"-n", "7", "-t", "1", "-k", "16", "-coins", "8", "-batch", "8",
		"-rngseed", "5", "-faults", "garbage@200:3",
	}
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("run(%v): %v\nstderr:\n%s", args, err, errb.String())
	}
	if !strings.Contains(out.String(), "coins delivered:   8 (all honest players unanimous)") {
		t.Fatalf("missing unanimity line in output:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "faults=[3:garbage@200]") {
		t.Fatalf("banner does not name the fault spec:\n%s", errb.String())
	}
}

// TestRunDeterministicWithSeed checks that a fixed -rngseed reproduces the
// identical coin stream (the flag exists for reproducibility).
func TestRunDeterministicWithSeed(t *testing.T) {
	args := []string{"-n", "7", "-t", "1", "-coins", "8", "-batch", "8", "-rngseed", "7", "-v"}
	coinsOf := func() string {
		var out, errb bytes.Buffer
		if err := run(args, &out, &errb); err != nil {
			t.Fatalf("run: %v", err)
		}
		var coins []string
		for _, l := range strings.Split(out.String(), "\n") {
			if strings.HasPrefix(l, "coin ") {
				coins = append(coins, l)
			}
		}
		if len(coins) != 8 {
			t.Fatalf("got %d coin lines, want 8:\n%s", len(coins), out.String())
		}
		return strings.Join(coins, "\n")
	}
	if a, b := coinsOf(), coinsOf(); a != b {
		t.Fatalf("same rngseed produced different coins:\n%s\nvs\n%s", a, b)
	}
}
