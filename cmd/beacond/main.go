// Command beacond serves shared randomness from a D-PRBG cluster — the
// deployable face of internal/beacon. It runs in one of three modes:
//
// Single-process (-all, also the default): all n players live in one
// process and randomness is served over HTTP. On first start the cluster is
// seeded with a one-time trusted-dealer batch (the paper's only trusted
// step); on SIGTERM/SIGINT it shuts down gracefully and persists every
// player's sealed store under -data, and a restart resumes from those files
// without the dealer ever being consulted again (§1.2's "the new seed is
// stored until the next execution of the application").
//
//	beacond -all -addr :8433 -n 7 -t 1 -k 32 -data /var/lib/beacond
//
// Ceremony (-deal): run the one-time trusted dealer for a multi-process
// cluster described by a peer config, writing every player's initial state
// files under -data for the operator to distribute (docs/OPERATIONS.md).
//
//	beacond -deal -config peers.yaml -data /tmp/ceremony
//
// Per-player daemon (-player): run exactly ONE player's Coin-Gen/Coin-Expose
// state machine, speaking authenticated TCP to the other daemons listed in
// the peer config. Every daemon appends the shared coins to an append-only
// public log under -data; the logs are byte-identical across honest
// daemons. Crash recovery and late joins are automatic as long as the
// player has not missed a refill (see internal/beacon Daemon docs).
//
//	beacond -player 3 -config peers.yaml -data /var/lib/beacond
//
// Resharing (-reshare, -reshare-join, -reshare-stale): a daemon given the
// NEXT generation's roster arms for a dealer-free handover — it negotiates
// a common cutover position with its peers, pauses the public log there,
// runs the resharing ceremony in-process, writes the next generation's
// state files and exits for a restart against the new peers.yaml. A pure
// joiner (a machine not in the old roster) takes part with -reshare-join;
// a member whose store missed a refill recovers through the same ceremony
// with -reshare-stale. See docs/OPERATIONS.md ("Membership change &
// proactive refresh").
//
//	beacond -player 3 -config peers.yaml -data DIR -reshare peers-g2.yaml
//	beacond -reshare-join 7 -config peers.yaml -reshare peers-g2.yaml -data DIR
//
// HTTP endpoints (single-process mode; daemon mode serves the observability
// endpoints only — /v1/healthz, /metrics, /debug/vars, /debug/trace — on
// -addr when set):
//
//	GET /v1/coin        one shared coin (an element of GF(2^k))
//	GET /v1/bits?n=128  n shared random bits, hex-encoded LSB-first
//	GET /v1/modulo?m=6  a shared value in [1, m] (the paper's leader draw)
//	GET /v1/healthz     liveness plus a stats summary
//	GET /metrics        Prometheus text exposition (draw latency, refill
//	                    pipeline, per-peer watermarks in daemon mode)
//	GET /debug/vars     expvar, with the unified beacon.VarsSnapshot under
//	                    the "beacon" key in both modes
//	GET /debug/trace    last ?n= events from the in-memory flight recorder,
//	                    as obs JSONL (mergeable with beaconctl timeline)
//
// Overload responses use 429 (queue full or rate-limited); a clean
// shutdown answers in-flight requests before persisting.
package main

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/beacon"
	"repro/internal/core"
	"repro/internal/gf2k"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/prom"
	"repro/internal/simnet"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// config is the validated flag set of one invocation.
type config struct {
	addr         string
	n, t, k      int
	batch        int
	threshold    int
	highWater    int
	seedCoins    int
	queue        int
	rate         float64
	burst        int
	data         string
	insecureRand bool
	rngSeed      int64

	// Mode selection (see usageModes).
	all        bool
	deal       bool
	player     int
	configPath string

	// Daemon-mode tuning.
	emit         int
	emitInterval time.Duration
	roundTimeout time.Duration
	dialBackoff  time.Duration
	joinTimeout  time.Duration
	trace        string

	// Dealer-free resharing (see usageModes and docs/OPERATIONS.md).
	resharePath   string
	reshareJoin   int
	reshareStale  bool
	reshareLinger time.Duration
}

// usageModes names the invocation shapes; every mode-selection error points
// the operator at it.
const usageModes = `modes:
  beacond -all    [-n 7 -t 1 ...]                     single process hosting all n players (default)
  beacond -deal   -config peers.yaml -data DIR        one-time dealer ceremony for a multi-process cluster
  beacond -player I -config peers.yaml -data DIR      one player's daemon, peered over authenticated TCP
  beacond -player I ... -reshare next.yaml            armed daemon: serve, then hand over to the next roster
  beacond -reshare-join J -config old.yaml -reshare next.yaml -data DIR
                                                      pure joiner: take part in the handover ceremony only`

func parseFlags(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("beacond", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var c config
	fs.StringVar(&c.addr, "addr", "127.0.0.1:8433", "HTTP listen address (daemon mode: empty disables HTTP)")
	fs.IntVar(&c.n, "n", 7, "number of players (n ≥ 6t+1)")
	fs.IntVar(&c.t, "t", 1, "Byzantine fault bound")
	fs.IntVar(&c.k, "k", 32, "coin field GF(2^k), 2 ≤ k ≤ 64")
	fs.IntVar(&c.batch, "batch", 96, "Coin-Gen batch size M")
	fs.IntVar(&c.threshold, "threshold", core.DefaultThreshold, "blocking refill threshold")
	fs.IntVar(&c.highWater, "highwater", 64, "proactive refill high-water mark (0 disables the pipeline)")
	fs.IntVar(&c.seedCoins, "seed-coins", 0, "one-time trusted-dealer seed size (default: batch)")
	fs.IntVar(&c.queue, "queue", 256, "request queue depth (backpressure bound)")
	fs.Float64Var(&c.rate, "rate", 0, "token-bucket rate limit in requests/s (0 disables)")
	fs.IntVar(&c.burst, "burst", 0, "token-bucket burst (default 1 when -rate is set)")
	fs.StringVar(&c.data, "data", "", "state directory for persisted stores (empty: no persistence; required in -deal/-player modes)")
	fs.BoolVar(&c.insecureRand, "insecure-rand", false, "use seeded math/rand instead of crypto/rand (reproducible demos ONLY)")
	fs.Int64Var(&c.rngSeed, "rng-seed", 1, "seed for -insecure-rand")
	fs.BoolVar(&c.all, "all", false, "single-process mode: host all n players in this process (the default)")
	fs.BoolVar(&c.deal, "deal", false, "run the one-time dealer ceremony for -config, write state files under -data, and exit")
	fs.IntVar(&c.player, "player", -1, "multi-process mode: run only this player's daemon (requires -config and -data)")
	fs.StringVar(&c.configPath, "config", "", "peer config (peers.yaml) for -deal and -player modes")
	fs.IntVar(&c.emit, "emit", 0, "daemon mode: stop after the public log reaches this many coins (0 = run forever)")
	fs.DurationVar(&c.emitInterval, "emit-interval", 0, "daemon mode: minimum delay between coin openings (0 = as fast as rounds allow)")
	fs.DurationVar(&c.roundTimeout, "round-timeout", 0, "daemon mode: barrier timeout before lagging peers are dropped from a round (0 = transport default)")
	fs.DurationVar(&c.dialBackoff, "dial-backoff", 0, "daemon mode: maximum reconnect backoff between dial attempts (0 = transport default)")
	fs.DurationVar(&c.joinTimeout, "join-timeout", 0, "daemon mode: bound on join choreography and reshare mesh formation (0 = default 30s)")
	fs.StringVar(&c.trace, "trace", "", "write an obs JSONL protocol trace to this file (-all: refill spans; -player: the full protocol)")
	fs.StringVar(&c.resharePath, "reshare", "", "next-generation peers.yaml: arm the daemon for a dealer-free handover (with -player), or name the target roster (with -reshare-join)")
	fs.IntVar(&c.reshareJoin, "reshare-join", -1, "run only the handover ceremony, as NEW-roster player J joining the committee (requires -config OLD -reshare NEXT -data DIR)")
	fs.BoolVar(&c.reshareStale, "reshare-stale", false, "with -player and -reshare: this member's store missed a refill; skip serving and recover fresh shares through the ceremony")
	fs.DurationVar(&c.reshareLinger, "reshare-linger", 0, "keep the observability endpoints up this long after a successful handover before exiting")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("beacond: unexpected arguments %v", fs.Args())
	}
	if err := c.validateModes(); err != nil {
		return nil, fmt.Errorf("%w\n%s", err, usageModes)
	}
	return &c, nil
}

// validateModes enforces that exactly one invocation shape was requested
// and that it has what it needs.
func (c *config) validateModes() error {
	modes := 0
	for _, on := range []bool{c.all, c.deal, c.player >= 0, c.reshareJoin >= 0} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		return fmt.Errorf("beacond: -all, -deal, -player and -reshare-join are mutually exclusive")
	}
	switch {
	case c.deal:
		if c.configPath == "" {
			return fmt.Errorf("beacond: -deal requires -config peers.yaml")
		}
		if c.data == "" {
			return fmt.Errorf("beacond: -deal requires -data (where to write the ceremony output)")
		}
		if c.resharePath != "" || c.reshareStale {
			return fmt.Errorf("beacond: -reshare flags are only meaningful with -player or -reshare-join")
		}
	case c.player >= 0:
		if c.configPath == "" {
			return fmt.Errorf("beacond: -player requires -config peers.yaml (without it there is no cluster to join; use -all for the single-process mode)")
		}
		if c.data == "" {
			return fmt.Errorf("beacond: -player requires -data (the player's state directory from the -deal ceremony)")
		}
		if c.reshareStale && c.resharePath == "" {
			return fmt.Errorf("beacond: -reshare-stale requires -reshare next-peers.yaml (the generation being reshared into)")
		}
	case c.reshareJoin >= 0:
		if c.configPath == "" || c.resharePath == "" {
			return fmt.Errorf("beacond: -reshare-join requires both -config (the OLD roster) and -reshare (the NEXT roster)")
		}
		if c.data == "" {
			return fmt.Errorf("beacond: -reshare-join requires -data (where this joiner's state files will be written)")
		}
		if c.reshareStale {
			return fmt.Errorf("beacond: -reshare-stale is for old members (-player); a joiner has no store to be stale")
		}
	default:
		// Single-process mode (explicit -all or no mode flag at all).
		if c.configPath != "" {
			return fmt.Errorf("beacond: -config is only meaningful with -deal, -player or -reshare-join")
		}
		if c.resharePath != "" || c.reshareStale {
			return fmt.Errorf("beacond: -reshare flags are only meaningful with -player or -reshare-join")
		}
	}
	return nil
}

func (c *config) beaconConfig(ctr *metrics.Counters) (beacon.Config, error) {
	field, err := gf2k.New(c.k)
	if err != nil {
		return beacon.Config{}, err
	}
	cfg := beacon.Config{
		Core: core.Config{
			Field:     field,
			N:         c.n,
			T:         c.t,
			BatchSize: c.batch,
			Threshold: c.threshold,
			HighWater: c.highWater,
		},
		SeedCoins:  c.seedCoins,
		QueueDepth: c.queue,
		Rate:       c.rate,
		Burst:      c.burst,
		Counters:   ctr,
	}
	if c.insecureRand {
		var salt atomic.Int64
		seed := c.rngSeed
		cfg.Rand = func(i int) io.Reader {
			return rand.New(rand.NewSource(seed + int64(i)*1009 + salt.Add(1)*1_000_003))
		}
	} else {
		cfg.Rand = func(int) io.Reader { return cryptorand.Reader }
	}
	return cfg, cfg.Validate()
}

// liveVars holds the current mode's snapshot function. expvar.Publish
// panics on duplicate names and tests start several servers (of both modes)
// in one process, so a single "beacon" key is registered once and
// dispatches to whatever ran last — both modes publish the same unified
// beacon.VarsSnapshot schema.
var liveVars atomic.Value // of func() beacon.VarsSnapshot

var publishOnce = func() func() {
	var done atomic.Bool
	return func() {
		if done.CompareAndSwap(false, true) {
			expvar.Publish("beacon", expvar.Func(func() any {
				if f, ok := liveVars.Load().(func() beacon.VarsSnapshot); ok {
					return f()
				}
				return nil
			}))
		}
	}
}()

// publishVars installs f as the process's /debug/vars snapshot source.
func publishVars(f func() beacon.VarsSnapshot) {
	liveVars.Store(f)
	publishOnce()
}

// traceHandler serves the in-memory flight recorder as obs JSONL: the last
// ?n= events (default: everything retained). The dump carries each event's
// origin/epoch correlation keys, so per-daemon dumps merge with
// obs.MergeJSONL into one cluster timeline (beaconctl timeline does).
func traceHandler(ring *obs.Ring) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		evs := ring.Events()
		if q := r.URL.Query().Get("n"); q != "" {
			var n int
			if _, err := fmt.Sscanf(q, "%d", &n); err != nil || n < 1 {
				http.Error(w, "beacond: malformed ?n= event count", http.StatusBadRequest)
				return
			}
			if len(evs) > n {
				evs = evs[len(evs)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		j := obs.NewJSONL(w)
		for _, e := range evs {
			j.Emit(e)
		}
		j.Flush() //nolint:errcheck // client went away; nothing to do
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	c, err := parseFlags(args, stderr)
	if err != nil {
		return err
	}
	switch {
	case c.deal:
		return runDeal(c, stdout)
	case c.player >= 0:
		return runPlayer(ctx, c, stdout, stderr)
	case c.reshareJoin >= 0:
		return runReshareJoin(ctx, c, stdout)
	}
	ctr := &metrics.Counters{}
	cfg, err := c.beaconConfig(ctr)
	if err != nil {
		return err
	}
	reg := prom.NewRegistry()
	cfg.Metrics = beacon.NewServiceMetrics(reg)
	// Always-on flight recorder: the refill tracer feeds the in-memory ring
	// (served at /debug/trace) and, with -trace, a JSONL file as well.
	ring := obs.NewRing(0)
	sinks := []obs.Sink{ring}
	if c.trace != "" {
		f, err := os.Create(c.trace)
		if err != nil {
			return err
		}
		defer f.Close()
		jsonl := obs.NewJSONL(f)
		defer jsonl.Flush() //nolint:errcheck // best-effort trace file
		sinks = append(sinks, jsonl)
	}
	cfg.Tracer = obs.New(ctr, sinks...)

	var svc *beacon.Service
	switch {
	case c.data != "" && beacon.HaveStores(c.data):
		stores, err := beacon.LoadStores(c.data, c.n)
		if err != nil {
			return err
		}
		if svc, err = beacon.Resume(cfg, stores); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "beacond: resumed %d players from %s (%d coins; trusted dealer not consulted)\n",
			c.n, c.data, svc.Stats().Remaining)
	default:
		if svc, err = beacon.New(cfg); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "beacond: fresh start, one-time trusted-dealer seed of %d coins\n",
			svc.Stats().Remaining)
	}
	publishVars(func() beacon.VarsSnapshot { return svc.Stats().Vars() })

	ln, err := net.Listen("tcp", c.addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: newMux(svc, c.k, reg, ring)}
	fmt.Fprintf(stdout, "beacond: listening on http://%s\n", ln.Addr())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "beacond: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(stderr, "beacond: http shutdown: %v\n", err)
	}
	if err := svc.Close(shutCtx); err != nil {
		return fmt.Errorf("beacond: close service: %w", err)
	}
	if c.data != "" {
		if err := svc.Persist(c.data); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "beacond: persisted %d player stores to %s (%d coins)\n",
			c.n, c.data, svc.Stats().Remaining)
	}
	st := svc.Stats()
	fmt.Fprintf(stdout, "beacond: served %d draws (%d coins), %d refills (%d pipelined, %d blocking), %d blocked draws\n",
		st.Draws, st.CoinsDelivered, st.Refills, st.PipelinedRefills, st.BlockingRefills, st.BlockedDraws)
	return nil
}

func newMux(svc *beacon.Service, k int, reg *prom.Registry, ring *obs.Ring) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/coin", func(w http.ResponseWriter, r *http.Request) {
		e, err := svc.Draw(r.Context())
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, map[string]any{"coin": fmt.Sprintf("0x%0*x", (k+3)/4, uint64(e)), "k": k})
	})
	mux.HandleFunc("GET /v1/bits", func(w http.ResponseWriter, r *http.Request) {
		var n int
		if _, err := fmt.Sscanf(r.URL.Query().Get("n"), "%d", &n); err != nil {
			http.Error(w, "beacond: missing or malformed ?n= bit count", http.StatusBadRequest)
			return
		}
		bits, err := svc.DrawBits(r.Context(), n)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, map[string]any{"bits": hex.EncodeToString(bits), "n": n})
	})
	mux.HandleFunc("GET /v1/modulo", func(w http.ResponseWriter, r *http.Request) {
		var m int
		if _, err := fmt.Sscanf(r.URL.Query().Get("m"), "%d", &m); err != nil {
			http.Error(w, "beacond: missing or malformed ?m= modulus", http.StatusBadRequest)
			return
		}
		v, err := svc.DrawMod(r.Context(), m)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, map[string]any{"value": v, "m": m})
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		st := svc.Stats()
		writeJSON(w, map[string]any{
			"status":    "ok",
			"remaining": st.Remaining,
			"queue":     st.QueueDepth,
			"refilling": st.RefillInFlight,
			"resumed":   st.Resumed,
		})
	})
	mux.Handle("GET /metrics", reg.Handler())
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/trace", traceHandler(ring))
	return mux
}

// writeErr maps service errors onto HTTP status codes: overload conditions
// are retryable 429s, validation failures 400s, shutdown 503.
func writeErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, beacon.ErrOverloaded), errors.Is(err, beacon.ErrRateLimited):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, beacon.ErrClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		http.Error(w, err.Error(), 499) // client closed request
	default:
		var status = http.StatusInternalServerError
		if isValidation(err) {
			status = http.StatusBadRequest
		}
		http.Error(w, err.Error(), status)
	}
}

// isValidation distinguishes argument errors (bad bit counts, bad moduli)
// from internal protocol failures.
func isValidation(err error) bool {
	s := err.Error()
	return strings.Contains(s, "outside") || strings.Contains(s, "invalid modulus")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// runDeal executes the one-time dealer ceremony for a multi-process
// cluster: every player's initial store/meta pair lands under -data, ready
// to be scattered to the daemons' machines.
func runDeal(c *config, stdout io.Writer) error {
	pc, err := simnet.LoadPeerConfig(c.configPath)
	if err != nil {
		return err
	}
	if err := beacon.DealCluster(pc, c.data, dealerRand(c)); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "beacond: dealt %d seed coins to %d players under %s\n",
		beacon.SeedCoinCount(pc), pc.N(), c.data)
	fmt.Fprintf(stdout, "beacond: distribute each player-NNN.* file set to its machine; the files contain secret shares\n")
	return nil
}

// runPlayer runs one player's daemon until the context is cancelled, the
// -emit target is reached, or — when armed with -reshare — the negotiated
// cutover is reached, at which point it runs the handover ceremony
// in-process and exits for a restart against the next-generation roster.
func runPlayer(ctx context.Context, c *config, stdout, stderr io.Writer) error {
	pc, err := simnet.LoadPeerConfig(c.configPath)
	if err != nil {
		return err
	}
	var next *simnet.PeerConfig
	if c.resharePath != "" {
		if next, err = simnet.LoadPeerConfig(c.resharePath); err != nil {
			return err
		}
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(stdout, "beacond[player %d]: "+format+"\n", append([]any{c.player}, args...)...)
	}
	if c.reshareStale {
		// The store missed a refill (ErrEpochMismatch): there is nothing to
		// serve, so go straight to the ceremony and recover fresh shares.
		logf("stale member: skipping serving, joining the resharing ceremony to generation %d", next.Generation)
		return runReshareCeremony(ctx, c, pc, next, c.player, nil, nil, nil, logf)
	}
	ctr := &metrics.Counters{}
	// The flight recorder is always on: every daemon retains its recent
	// protocol events in memory for /debug/trace, and -trace additionally
	// streams them to a JSONL file. NewDaemon stamps the tracer with this
	// player's origin and epoch, so dumps from different daemons correlate.
	ring := obs.NewRing(0)
	sinks := []obs.Sink{ring}
	if c.trace != "" {
		f, err := os.Create(c.trace)
		if err != nil {
			return err
		}
		defer f.Close()
		jsonl := obs.NewJSONL(f)
		defer jsonl.Flush() //nolint:errcheck // best-effort trace file
		sinks = append(sinks, jsonl)
	}
	tracer := obs.New(ctr, sinks...)
	reg := prom.NewRegistry()
	dm := beacon.NewDaemonMetrics(reg)
	pm := simnet.NewPeerMetrics(reg)
	d, err := beacon.NewDaemon(beacon.DaemonConfig{
		Peers:          pc,
		Self:           c.player,
		StateDir:       c.data,
		Emit:           c.emit,
		EmitInterval:   c.emitInterval,
		Rand:           playerRand(c),
		Counters:       ctr,
		Tracer:         tracer,
		Metrics:        dm,
		PeerMetrics:    pm,
		RoundTimeout:   c.roundTimeout,
		DialBackoffMax: c.dialBackoff,
		JoinTimeout:    c.joinTimeout,
		ReshareNext:    next,
		Logf:           logf,
	})
	if err != nil {
		return err
	}
	publishVars(func() beacon.VarsSnapshot { return d.Stats().Vars() })

	var srv *http.Server
	if c.addr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
			st := d.Stats()
			writeJSON(w, map[string]any{
				"status": "ok", "player": st.Player, "joined": st.Joined,
				"round": st.Round, "log": st.LogLen, "epoch": st.Epoch,
				"remaining": st.Remaining, "refilling": st.Refilling, "peers": st.Peers,
				"generation": st.Generation, "armed": st.ReshareArmed, "cutover": st.Cutover,
			})
		})
		mux.Handle("GET /metrics", reg.Handler())
		mux.Handle("GET /debug/vars", expvar.Handler())
		mux.HandleFunc("GET /debug/trace", traceHandler(ring))
		ln, err := net.Listen("tcp", c.addr)
		if err != nil {
			return err
		}
		logf("stats on http://%s", ln.Addr())
		srv = &http.Server{Handler: mux}
		go srv.Serve(ln)
	}

	logf("joining cluster %q as player %d of %d (log %s)",
		pc.Cluster, c.player, pc.N(), beacon.CoinLogFile(c.data, c.player))
	runErr := d.Run(ctx)
	reshared := false
	if next != nil && errors.Is(runErr, beacon.ErrReshareCutover) {
		// The whole committee paused at the same log position; the ceremony
		// runs in-process on the same state dir, with the observability
		// endpoints still up so the reshare metrics can be scraped.
		logf("cutover reached at log %d; starting the resharing ceremony to generation %d",
			d.Stats().Cutover, next.Generation)
		runErr = runReshareCeremony(ctx, c, pc, next, c.player, dm, pm, tracer, logf)
		reshared = runErr == nil
		if reshared && c.reshareLinger > 0 {
			logf("observability endpoints linger %v for a final scrape", c.reshareLinger)
			select {
			case <-ctx.Done():
			case <-time.After(c.reshareLinger):
			}
		}
	}
	if srv != nil {
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx)
	}
	if runErr != nil {
		return fmt.Errorf("beacond: player %d: %w", c.player, runErr)
	}
	if reshared {
		return nil
	}
	st := d.Stats()
	logf("stopped cleanly at log position %d (epoch %d, %d coins in store)", st.LogLen, st.Epoch, st.Remaining)
	return nil
}

// runReshareJoin is the pure joiner's entry point: a machine that is not
// in the old roster takes part in the handover ceremony, receives its
// shares and the public log, and writes its first state files under -data.
func runReshareJoin(ctx context.Context, c *config, stdout io.Writer) error {
	old, err := simnet.LoadPeerConfig(c.configPath)
	if err != nil {
		return err
	}
	next, err := simnet.LoadPeerConfig(c.resharePath)
	if err != nil {
		return err
	}
	j := c.reshareJoin
	var addr string
	for _, p := range next.Peers {
		if p.ID == j {
			addr = p.Addr
		}
	}
	if addr == "" {
		return fmt.Errorf("beacond: -reshare-join %d is not in the next roster (%d peers)", j, next.N())
	}
	for _, p := range old.Peers {
		if p.Addr == addr {
			return fmt.Errorf("beacond: %s is already old-roster player %d — an existing member hands over with -player %d -reshare, not -reshare-join",
				addr, p.ID, p.ID)
		}
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(stdout, "beacond[joiner %d]: "+format+"\n", append([]any{j}, args...)...)
	}
	logf("joining the resharing ceremony to generation %d as new player %d (%s)", next.Generation, j, addr)
	return runReshareCeremony(ctx, c, old, next, -1, nil, nil, nil, logf)
}

// nextIndexOf maps an old-roster member to its index in the next roster by
// dial address (-1: the member is leaving the committee).
func nextIndexOf(old, next *simnet.PeerConfig, oldSelf int) int {
	var addr string
	for _, p := range old.Peers {
		if p.ID == oldSelf {
			addr = p.Addr
		}
	}
	for _, p := range next.Peers {
		if p.Addr == addr {
			return p.ID
		}
	}
	return -1
}

// runReshareCeremony executes this process's side of the dealer-free
// handover (beacon.RunReshare) and tells the operator what to run next.
func runReshareCeremony(ctx context.Context, c *config, old, next *simnet.PeerConfig,
	oldSelf int, dm *beacon.DaemonMetrics, pm *simnet.PeerMetrics, tracer *obs.Tracer,
	logf func(string, ...any)) error {
	newSelf := c.reshareJoin
	if oldSelf >= 0 {
		newSelf = nextIndexOf(old, next, oldSelf)
	}
	res, err := beacon.RunReshare(ctx, beacon.ReshareConfig{
		Old:          old,
		Next:         next,
		OldSelf:      oldSelf,
		NewSelf:      newSelf,
		StateDir:     c.data,
		Stale:        c.reshareStale,
		Rand:         reshareRand(c, oldSelf, newSelf),
		JoinTimeout:  c.joinTimeout,
		RoundTimeout: c.roundTimeout,
		Metrics:      dm,
		PeerMetrics:  pm,
		Tracer:       tracer,
		Logf:         logf,
	})
	if err != nil {
		return err
	}
	if res.Resumed {
		logf("reshare to generation %d had already completed; journal cleared", res.Generation)
	} else {
		logf("handover complete: generation %d at cutover %d (%d coins reshared, cheaters %v, attempt %d)",
			res.Generation, res.Cutover, res.Coins, res.Cheaters, res.Attempt)
	}
	if newSelf < 0 {
		logf("this member left the committee; its share store has been retired (the public log under %s remains)", c.data)
		return nil
	}
	logf("restart with: beacond -player %d -config %s -data %s", newSelf, c.resharePath, c.data)
	return nil
}

// dealerRand is the ceremony's randomness source; playerRand is one
// daemon's private source. -insecure-rand pins both to a deterministic
// stream for reproducible demos and the soak harness.
func dealerRand(c *config) io.Reader {
	if c.insecureRand {
		return rand.New(rand.NewSource(c.rngSeed))
	}
	return cryptorand.Reader
}

func playerRand(c *config) io.Reader {
	if c.insecureRand {
		return rand.New(rand.NewSource(c.rngSeed + int64(c.player)*1009))
	}
	return cryptorand.Reader
}

// reshareRand is one participant's private sub-dealing randomness for the
// handover ceremony. With -insecure-rand the stream is keyed away from the
// serving daemons' streams (and joiners away from old members) so no
// polynomial coefficients repeat across the two protocols.
func reshareRand(c *config, oldSelf, newSelf int) io.Reader {
	if !c.insecureRand {
		return cryptorand.Reader
	}
	idx := oldSelf
	if idx < 0 {
		idx = 100_000 + newSelf
	}
	return rand.New(rand.NewSource(c.rngSeed + 500_009 + int64(idx)*1009))
}
