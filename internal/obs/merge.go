package obs

import (
	"fmt"
	"io"
	"sort"
)

// MergeTraces fuses per-process event streams into one canonically ordered
// cluster timeline. The map key is the origin (the daemon's player id) each
// stream was recorded by; every event in stream k is re-stamped with
// Origin=k, so files whose tracers forgot SetOrigin — or whose local ids
// collide — merge under the caller's authoritative identities.
//
// Ordering: events are stably sorted by (Epoch, Round, Origin, per-stream
// Seq). Epoch leads because a rejoining daemon can replay earlier rounds of
// a later epoch during backfill; within an epoch the simnet round is the
// cluster clock, and within a round each origin's local emission order is
// preserved. Seq is then renumbered 1..len globally, and span/parent ids —
// which collide across independently numbered per-daemon tracers — are
// remapped per origin in first-appearance order, mirroring CanonicalOrder.
// The result is a pure function of the per-stream histories, so two
// captures of the same deterministic cluster run merge identically.
func MergeTraces(streams map[int][]Event) []Event {
	origins := make([]int, 0, len(streams))
	for k := range streams {
		origins = append(origins, k)
	}
	sort.Ints(origins)

	type key struct {
		origin int
		seq    uint64
	}
	total := 0
	for _, evs := range streams {
		total += len(evs)
	}
	out := make([]Event, 0, total)
	srcSeq := make([]uint64, 0, total) // parallel: original per-stream Seq
	for _, k := range origins {
		for _, e := range streams[k] {
			srcSeq = append(srcSeq, e.Seq)
			e.Origin = k
			out = append(out, e)
		}
	}
	idx := make([]int, len(out))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ea, eb := out[idx[a]], out[idx[b]]
		if ea.Epoch != eb.Epoch {
			return ea.Epoch < eb.Epoch
		}
		if ea.Round != eb.Round {
			return ea.Round < eb.Round
		}
		if ea.Origin != eb.Origin {
			return ea.Origin < eb.Origin
		}
		return srcSeq[idx[a]] < srcSeq[idx[b]]
	})

	merged := make([]Event, len(out))
	spanID := make(map[key]uint64)
	var nextSpan uint64
	remap := func(origin int, id uint64) uint64 {
		if id == 0 {
			return 0
		}
		k := key{origin, id}
		if v, ok := spanID[k]; ok {
			return v
		}
		nextSpan++
		spanID[k] = nextSpan
		return nextSpan
	}
	for i, j := range idx {
		e := out[j]
		e.Seq = uint64(i + 1)
		e.Span = remap(e.Origin, e.Span)
		e.Parent = remap(e.Origin, e.Parent)
		merged[i] = e
	}
	return merged
}

// MergeJSONL parses per-process JSONL traces (keyed by origin, as for
// MergeTraces) and merges them into one cluster timeline. Torn tails are
// dropped by ParseJSONL, so traces captured from SIGKILLed daemons merge
// cleanly; any other parse failure reports which origin's stream broke.
func MergeJSONL(streams map[int]io.Reader) ([]Event, error) {
	parsed := make(map[int][]Event, len(streams))
	for k, r := range streams {
		evs, err := ParseJSONL(r)
		if err != nil {
			return nil, fmt.Errorf("obs: merge origin %d: %w", k, err)
		}
		parsed[k] = evs
	}
	return MergeTraces(parsed), nil
}
