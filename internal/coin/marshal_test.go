package coin

import (
	"math/rand"
	"testing"

	"repro/internal/gf2k"
	"repro/internal/simnet"
)

func TestBatchMarshalRoundTrip(t *testing.T) {
	f := gf2k.MustNew(32)
	rng := rand.New(rand.NewSource(1))
	batches, values, err := DealTrusted(f, 7, 2, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Serialize each player's batch, restore, expose: the restored batches
	// must produce the original coins.
	restored := make([]*Batch, 7)
	for i, b := range batches {
		b.Silent = i == 6 // exercise the flag
		data, err := b.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		r, err := UnmarshalBatch(data)
		if err != nil {
			t.Fatal(err)
		}
		if r.T != b.T || r.Silent != b.Silent || len(r.S) != len(b.S) || r.Remaining() != b.Remaining() {
			t.Fatalf("player %d: metadata mismatch: %+v vs %+v", i, r, b)
		}
		restored[i] = r
	}
	nw := simnet.New(7)
	fns := make([]simnet.PlayerFunc, 7)
	for i := range fns {
		b := restored[i]
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			var out []gf2k.Element
			for b.Remaining() > 0 {
				c, err := b.Expose(nd)
				if err != nil {
					return nil, err
				}
				out = append(out, c)
			}
			return out, nil
		}
	}
	for i, r := range simnet.Run(nw, fns) {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		got := r.Value.([]gf2k.Element)
		for h, want := range values {
			if got[h] != want {
				t.Fatalf("player %d coin %d: %#x, want %#x", i, h, got[h], want)
			}
		}
	}
}

func TestBatchMarshalPreservesCursor(t *testing.T) {
	f := gf2k.MustNew(16)
	rng := rand.New(rand.NewSource(2))
	batches, values, err := DealTrusted(f, 4, 1, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Expose one coin, serialize mid-stream, restore, continue.
	nw := simnet.New(4)
	fns := make([]simnet.PlayerFunc, 4)
	for i := range fns {
		b := batches[i]
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			if _, err := b.Expose(nd); err != nil {
				return nil, err
			}
			data, err := b.MarshalBinary()
			if err != nil {
				return nil, err
			}
			r, err := UnmarshalBatch(data)
			if err != nil {
				return nil, err
			}
			if r.Cursor() != 1 || r.Remaining() != 2 {
				t.Errorf("cursor/remaining = %d/%d, want 1/2", r.Cursor(), r.Remaining())
			}
			return r.Expose(nd)
		}
	}
	for i, r := range simnet.Run(nw, fns) {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
		if r.Value.(gf2k.Element) != values[1] {
			t.Fatalf("player %d: resumed at wrong coin", i)
		}
	}
}

func TestStoreMarshalPersistsUniverseAndGeneration(t *testing.T) {
	f := gf2k.MustNew(16)
	rng := rand.New(rand.NewSource(7))
	batches, _, err := DealTrusted(f, 7, 1, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	st := &Store{Generation: 3}
	if err := st.Add(batches[0]); err != nil {
		t.Fatal(err)
	}
	if err := st.BindUniverse(7); err != nil {
		t.Fatal(err)
	}
	data, err := st.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	r, err := UnmarshalStore(data)
	if err != nil {
		t.Fatal(err)
	}
	if r.Universe != 7 || r.Generation != 3 {
		t.Fatalf("restored universe/generation = %d/%d, want 7/3", r.Universe, r.Generation)
	}
	// The persisted binding makes a wrong-roster resume fail loudly…
	if err := r.BindUniverse(9); err == nil {
		t.Fatal("BindUniverse accepted a different roster on a bound store")
	}
	// …while the same roster and the explicit migration path both work.
	if err := r.BindUniverse(7); err != nil {
		t.Fatalf("BindUniverse with the persisted roster: %v", err)
	}
	if err := r.RebindUniverse(9); err != nil {
		t.Fatalf("RebindUniverse: %v", err)
	}
	if r.Universe != 9 {
		t.Fatalf("RebindUniverse left universe %d, want 9", r.Universe)
	}
	// RebindUniverse still refuses a universe the batches cannot fit.
	if err := r.RebindUniverse(3); err == nil {
		t.Fatal("RebindUniverse accepted a universe smaller than the reconstruction set")
	}
}

func TestUnmarshalStoreAcceptsLegacyV1(t *testing.T) {
	f := gf2k.MustNew(16)
	rng := rand.New(rand.NewSource(8))
	batches, _, err := DealTrusted(f, 4, 1, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	st := &Store{}
	if err := st.Add(batches[0]); err != nil {
		t.Fatal(err)
	}
	v2, err := st.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Reframe as the legacy v1 encoding: old magic, no universe/generation
	// header. Old blobs written before the v2 format must still load, with
	// the universe unbound (pre-resharing semantics).
	v1 := append([]byte(storeMagicV1), v2[len(storeMagicV2)+8:]...)
	r, err := UnmarshalStore(v1)
	if err != nil {
		t.Fatalf("legacy v1 store rejected: %v", err)
	}
	if r.Universe != 0 || r.Generation != 0 {
		t.Fatalf("v1 decode invented universe/generation %d/%d", r.Universe, r.Generation)
	}
	if r.Remaining() != 3 {
		t.Fatalf("v1 decode remaining = %d, want 3", r.Remaining())
	}
	// An unbound restored store binds to any workable roster, as before.
	if err := r.BindUniverse(9); err != nil {
		t.Fatalf("BindUniverse on v1 store: %v", err)
	}
}

func TestUnmarshalBatchRejectsMalformed(t *testing.T) {
	f := gf2k.MustNew(16)
	rng := rand.New(rand.NewSource(3))
	batches, _, err := DealTrusted(f, 4, 1, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	good, err := batches[0].MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    append([]byte("NOTMAGIC"), good[8:]...),
		"truncated":    good[:len(good)-3],
		"trailing":     append(append([]byte{}, good...), 0xff),
		"cursor range": func() []byte { b := append([]byte{}, good...); b[len(b)-4] = 0xff; return b }(),
	}
	for name, data := range cases {
		if _, err := UnmarshalBatch(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Valid round trip sanity.
	if _, err := UnmarshalBatch(good); err != nil {
		t.Fatalf("good encoding rejected: %v", err)
	}
}
