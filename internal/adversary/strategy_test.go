package adversary

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/simnet"
)

// strategyRound runs one round on a 4-node network under the strategy:
// every node sends []byte{0x10+index} to every other node. It returns each
// node's delivered payloads keyed by sender.
func strategyRound(t *testing.T, s *Strategy) []map[int][]byte {
	t.Helper()
	nw := simnet.New(4, simnet.WithInterceptor(s))
	fns := make([]simnet.PlayerFunc, 4)
	for i := range fns {
		fns[i] = func(nd *simnet.Node) (interface{}, error) {
			nd.SendAll([]byte{byte(0x10 + nd.Index())})
			msgs, err := nd.EndRound()
			if err != nil {
				return nil, err
			}
			out := map[int][]byte{}
			for _, m := range msgs {
				if _, dup := out[m.From]; !dup {
					out[m.From] = m.Payload
				}
			}
			return out, nil
		}
	}
	results := simnet.Run(nw, fns)
	out := make([]map[int][]byte, 4)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("node %d: %v", i, r.Err)
		}
		out[i] = r.Value.(map[int][]byte)
	}
	return out
}

func TestStrategyFirstMatchingRuleWins(t *testing.T) {
	s := NewStrategy(1).
		On(Match{Senders: []int{0}, Receivers: []int{1}}, Drop()).
		On(Match{Senders: []int{0}}, Tamper(func(to int, p []byte) []byte {
			p[0] = 0xEE
			return p
		}))
	got := strategyRound(t, s)
	if _, ok := got[1][0]; ok {
		t.Fatalf("rule 1 (drop to node 1) was shadowed: %v", got[1])
	}
	for _, to := range []int{2, 3} {
		if !bytes.Equal(got[to][0], []byte{0xEE}) {
			t.Fatalf("rule 2 (tamper) missed copy to node %d: %v", to, got[to][0])
		}
	}
	// Unmatched senders pass through untouched.
	if !bytes.Equal(got[0][2], []byte{0x12}) {
		t.Fatalf("unmatched traffic was modified: %v", got[0][2])
	}
}

func TestStrategyRoundPredicates(t *testing.T) {
	if !RoundIs(3)(3) || RoundIs(3)(2) {
		t.Fatal("RoundIs(3) wrong")
	}
	p := RoundIn(2, 4)
	for r, want := range map[int]bool{1: false, 2: true, 4: true, 5: false} {
		if p(r) != want {
			t.Fatalf("RoundIn(2,4)(%d) = %v", r, p(r))
		}
	}
	// A round-bound rule leaves other rounds alone.
	s := NewStrategy(1).On(Match{Senders: []int{0}, Round: RoundIs(7)}, Drop())
	got := strategyRound(t, s) // everything happens in round 0
	if _, ok := got[1][0]; !ok {
		t.Fatal("round-7 rule fired in round 0")
	}
}

func TestStrategyKindMatch(t *testing.T) {
	s := NewStrategy(1).On(Match{Kind: simnet.Broadcast}, Drop())
	nw := simnet.New(2, simnet.WithInterceptor(s))
	results := simnet.Run(nw, []simnet.PlayerFunc{
		func(nd *simnet.Node) (interface{}, error) {
			nd.Broadcast([]byte{1})
			nd.Send(1, []byte{2})
			_, err := nd.EndRound()
			return nil, err
		},
		func(nd *simnet.Node) (interface{}, error) {
			msgs, err := nd.EndRound()
			return msgs, err
		},
	})
	if results[1].Err != nil {
		t.Fatal(results[1].Err)
	}
	msgs := results[1].Value.([]simnet.Message)
	if len(msgs) != 1 || msgs[0].Kind != simnet.Unicast {
		t.Fatalf("broadcast-only drop delivered %v", msgs)
	}
}

func TestTamperDoesNotMutateSharedPayload(t *testing.T) {
	// Node 0 sends the SAME slice to everyone; tampering the copy for node 1
	// must not leak into the copies for nodes 2 and 3.
	s := NewStrategy(1).On(
		Match{Senders: []int{0}, Receivers: []int{1}},
		Tamper(func(to int, p []byte) []byte { p[0] = 0xBB; return p }),
	)
	got := strategyRound(t, s)
	if !bytes.Equal(got[1][0], []byte{0xBB}) {
		t.Fatalf("tamper target unchanged: %v", got[1][0])
	}
	for _, to := range []int{2, 3} {
		if !bytes.Equal(got[to][0], []byte{0x10}) {
			t.Fatalf("tamper leaked into shared payload for node %d: %v", to, got[to][0])
		}
	}
}

func TestEffects(t *testing.T) {
	t.Run("duplicate", func(t *testing.T) {
		s := NewStrategy(1).On(Match{Senders: []int{0}, Receivers: []int{1}}, Duplicate(3))
		nw := simnet.New(2, simnet.WithInterceptor(s))
		results := simnet.Run(nw, []simnet.PlayerFunc{
			func(nd *simnet.Node) (interface{}, error) {
				nd.Send(1, []byte{7})
				_, err := nd.EndRound()
				return nil, err
			},
			func(nd *simnet.Node) (interface{}, error) { return nd.EndRound() },
		})
		msgs := results[1].Value.([]simnet.Message)
		if len(msgs) != 3 {
			t.Fatalf("duplicate delivered %d copies, want 3", len(msgs))
		}
	})
	t.Run("redirect", func(t *testing.T) {
		s := NewStrategy(1).On(Match{Senders: []int{0}}, Redirect(3))
		got := strategyRound(t, s)
		if _, ok := got[1][0]; ok {
			t.Fatal("redirected copy still delivered to original addressee")
		}
		// Node 3 gets its own copy plus the two redirected ones; sender
		// identity survives the redirect.
		if p, ok := got[3][0]; !ok || !bytes.Equal(p, []byte{0x10}) {
			t.Fatalf("redirect target did not receive sender 0's message: %v", got[3])
		}
	})
	t.Run("garble", func(t *testing.T) {
		s := NewStrategy(42).On(Match{Senders: []int{0}}, Garble(8))
		got := strategyRound(t, s)
		for _, to := range []int{1, 2, 3} {
			if p, ok := got[to][0]; ok && len(p) > 8 {
				t.Fatalf("garbled payload longer than maxLen: %d", len(p))
			}
		}
	})
	t.Run("per-recipient flip differs by recipient", func(t *testing.T) {
		s := NewStrategy(1).On(Match{Senders: []int{0}}, PerRecipientFlip(0))
		got := strategyRound(t, s)
		if bytes.Equal(got[1][0], got[2][0]) {
			t.Fatalf("per-recipient flip produced identical copies: %v", got[1][0])
		}
	})
}

// TestStrategyDeterministicFromSeed pins that two identical runs under a
// seeded randomized strategy deliver identical traffic.
func TestStrategyDeterministicFromSeed(t *testing.T) {
	deliveries := func() []map[int][]byte {
		return strategyRound(t, NewStrategy(99).On(Match{Senders: []int{0}}, Garble(16)))
	}
	if a, b := deliveries(), deliveries(); !reflect.DeepEqual(a, b) {
		t.Fatalf("seeded strategy nondeterministic:\n%v\nvs\n%v", a, b)
	}
}

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("crash:2,9; silent@200:4 ;garbage@8:5", 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := spec.Indices(), []int{2, 4, 5, 9}; !reflect.DeepEqual(got, want) {
		t.Fatalf("indices = %v, want %v", got, want)
	}
	for idx, wantName := range map[int]string{2: "crash", 9: "crash", 4: "silent@200", 5: "garbage@8"} {
		if spec[idx].Name != wantName {
			t.Fatalf("player %d fault = %q, want %q", idx, spec[idx].Name, wantName)
		}
		if spec[idx].Fn == nil {
			t.Fatalf("player %d has no player func", idx)
		}
	}
	if empty, err := ParseSpec("  ", 4, 1); err != nil || len(empty) != 0 {
		t.Fatalf("empty spec: %v, %v", empty, err)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct{ spec, want string }{
		{"crash", "lacks a ':<indices>'"},
		{"crash:x", "not an integer"},
		{"crash:7", "range over [0, 7)"},
		{"crash:-1", "range over [0, 7)"},
		{"crash:0,0", "duplicate entry for player 0"},
		{"crash:0;silent:0", "duplicate entry for player 0"},
		{"explode:1", "unknown behaviour"},
		{"crash-after:1", "requires a parameter"},
		{"silent@x:1", "not a non-negative integer"},
	}
	for _, tc := range cases {
		_, err := ParseSpec(tc.spec, 7, 1)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("ParseSpec(%q) error = %v, want substring %q", tc.spec, err, tc.want)
		}
	}
}

// TestParseSpecBehavioursRun wires each spec behaviour into a live network
// next to an honest observer and checks it terminates cleanly.
func TestParseSpecBehavioursRun(t *testing.T) {
	for _, entry := range []string{"crash:0", "crash-after@2:0", "silent@2:0", "garbage@2:0", "replay@2:0"} {
		t.Run(entry, func(t *testing.T) {
			spec, err := ParseSpec(entry, 2, 7)
			if err != nil {
				t.Fatal(err)
			}
			nw := simnet.New(2, simnet.WithMaxRounds(10))
			results := simnet.Run(nw, []simnet.PlayerFunc{
				spec[0].Fn,
				func(nd *simnet.Node) (interface{}, error) {
					for r := 0; r < 3; r++ {
						if _, err := nd.EndRound(); err != nil {
							return nil, fmt.Errorf("observer round %d: %w", r, err)
						}
					}
					return nil, nil
				},
			})
			for i, r := range results {
				if r.Err != nil {
					t.Fatalf("player %d: %v", i, r.Err)
				}
			}
		})
	}
}
