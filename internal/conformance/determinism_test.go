package conformance

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

// goldenTranscript runs the honest Coin-Gen scenario once and returns its
// full obs trace as canonicalised JSONL. The tracer is built with obs.New(nil,
// ...) — no cost counters — so events carry no scheduler-dependent snapshots,
// and obs.CanonicalOrder removes the remaining schedule artefacts (global Seq
// and span-ID assignment order).
func goldenTranscript(t *testing.T, sc Scenario) []byte {
	t.Helper()
	o, err := RunCoinGen(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Check(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	for _, e := range obs.CanonicalOrder(o.Env.ring.Events()) {
		sink.Emit(e)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if o.Env.ring.Dropped() != 0 {
		t.Fatalf("trace ring dropped %d events; raise the ring capacity", o.Env.ring.Dropped())
	}
	return buf.Bytes()
}

// TestGoldenTranscriptDeterminism pins the reproducibility contract at the
// trace level: two fixed-seed Coin-Gen runs must emit byte-identical JSONL
// transcripts after canonical ordering, even though goroutine scheduling
// differs between runs. This is what makes `(seed, config)` in a bug report
// sufficient to replay a failure message-for-message.
func TestGoldenTranscriptDeterminism(t *testing.T) {
	sc := Scenario{Protocol: "coingen", Attack: "honest", N: 7, T: 1, M: 2, Seed: 31}
	first := goldenTranscript(t, sc)
	second := goldenTranscript(t, sc)
	if len(first) == 0 {
		t.Fatal("transcript is empty — tracer not wired into the network")
	}
	if !bytes.Equal(first, second) {
		line := 0
		a, b := bytes.Split(first, []byte("\n")), bytes.Split(second, []byte("\n"))
		for i := 0; i < len(a) && i < len(b); i++ {
			if !bytes.Equal(a[i], b[i]) {
				line = i
				break
			}
		}
		t.Fatalf("transcripts differ at line %d:\n run 1: %s\n run 2: %s", line+1, a[line], b[line])
	}
	// The canonical transcript must survive a parse round-trip, so archived
	// goldens stay loadable.
	events, err := obs.ParseJSONL(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("round-trip lost all events")
	}
}

// TestGoldenTranscriptUnderAttack extends the same guarantee to a run with
// message-level fault injection: the interceptor is seeded, so even the
// tampered byte streams replay identically.
func TestGoldenTranscriptUnderAttack(t *testing.T) {
	sc := Scenario{Protocol: "coingen", Attack: "deal-corrupt", N: 7, T: 1, M: 2, Seed: 32}
	first := goldenTranscript(t, sc)
	second := goldenTranscript(t, sc)
	if !bytes.Equal(first, second) {
		t.Fatal("attacked transcripts differ across identical (seed, config) runs")
	}
}

// TestGoldenTranscriptWidthInvariance pins the parallel engine's core
// contract: a Coin-Gen run computing through width-8 parallel.Pools must
// emit a canonical JSONL transcript byte-identical to the fully serial run
// of the same (seed, config). Any task that sent a message, touched the
// tracer, or reordered result consumption off the node goroutine would
// break this equality.
func TestGoldenTranscriptWidthInvariance(t *testing.T) {
	base := Scenario{Protocol: "coingen", Attack: "honest", N: 13, T: 2, M: 4, Seed: 33}
	serial := goldenTranscript(t, base)
	wide := base
	wide.Width = 8
	parallel := goldenTranscript(t, wide)
	if len(serial) == 0 {
		t.Fatal("serial transcript is empty — tracer not wired into the network")
	}
	if !bytes.Equal(serial, parallel) {
		a, b := bytes.Split(serial, []byte("\n")), bytes.Split(parallel, []byte("\n"))
		for i := 0; i < len(a) && i < len(b); i++ {
			if !bytes.Equal(a[i], b[i]) {
				t.Fatalf("width=1 and width=8 transcripts diverge at line %d:\n serial:  %s\n width=8: %s",
					i+1, a[i], b[i])
			}
		}
		t.Fatalf("width=8 transcript has %d lines, serial has %d", len(b), len(a))
	}
}

// TestAdversarialVerdictsWidthInvariant re-runs every Coin-Gen attack at
// width 8 and asserts the full conformance contract still holds — the
// paper's verdicts (clique membership, attacker expulsion, coin unanimity)
// must not depend on how many cores a player borrows.
func TestAdversarialVerdictsWidthInvariant(t *testing.T) {
	attacks := []string{"honest", "crash", "silent", "wrong-degree-dealer",
		"coin-share-liar", "deal-corrupt", "gamma-equivocate"}
	for _, a := range attacks {
		sc := Scenario{Protocol: "coingen", Attack: a, N: 13, T: 2, M: 3, Seed: 34, Width: 8}
		t.Run(sc.String(), func(t *testing.T) {
			wide, err := RunCoinGen(sc)
			if err != nil {
				t.Fatal(err)
			}
			if err := wide.Check(); err != nil {
				t.Fatal(err)
			}
			// The serial run of the identical scenario must agree verdict
			// for verdict: same clique, same attempt count, same coins.
			serialSc := sc
			serialSc.Width = 0
			serial, err := RunCoinGen(serialSc)
			if err != nil {
				t.Fatal(err)
			}
			ref, wideRef := serial.Players[serial.Honest[0]], wide.Players[wide.Honest[0]]
			if len(ref.Res.Clique) != len(wideRef.Res.Clique) {
				t.Fatalf("clique size differs: serial %v vs width-8 %v", ref.Res.Clique, wideRef.Res.Clique)
			}
			for i := range ref.Res.Clique {
				if ref.Res.Clique[i] != wideRef.Res.Clique[i] {
					t.Fatalf("clique differs: serial %v vs width-8 %v", ref.Res.Clique, wideRef.Res.Clique)
				}
			}
			if ref.Res.Attempts != wideRef.Res.Attempts {
				t.Fatalf("attempts differ: serial %d vs width-8 %d", ref.Res.Attempts, wideRef.Res.Attempts)
			}
			for h := range ref.Coins {
				if ref.Coins[h] != wideRef.Coins[h] {
					t.Fatalf("coin %d differs: serial %#x vs width-8 %#x", h, ref.Coins[h], wideRef.Coins[h])
				}
			}
		})
	}
}
