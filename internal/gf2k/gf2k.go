// Package gf2k implements arithmetic in the binary extension fields GF(2^k)
// for 2 ≤ k ≤ 64, the fields over which every protocol in the paper is
// presented ("For simplicity however the algorithms we provide below assume
// we work over GF(2^k)", §2).
//
// Elements are stored in a uint64 holding the coefficients of a degree-<k
// binary polynomial. Addition is XOR; multiplication is a carry-less
// 64×64→128-bit product followed by reduction modulo a fixed irreducible
// polynomial of degree k. The reduction polynomial is found at Field
// construction time by deterministic search and verified with Rabin's
// irreducibility test, so no hard-coded polynomial table needs to be trusted.
//
// A Field may carry a *metrics.Counters; when present, every arithmetic
// operation is accounted so protocol experiments can report field-operation
// costs in the units the paper uses.
package gf2k

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"

	"repro/internal/metrics"
)

// Element is an element of GF(2^k), k ≤ 64: the coefficients of a binary
// polynomial of degree < k, least-significant bit = constant term.
type Element uint64

// Field describes GF(2^k) together with its reduction polynomial.
//
// Construct with New. The zero value is not usable.
type Field struct {
	k    int
	taps uint64 // reduction polynomial minus the implicit x^k term
	ctr  *metrics.Counters
	tbl  *tables // optional log/antilog tables (WithTables, k ≤ 16)
}

// New returns the field GF(2^k). The reduction polynomial is the
// lexicographically smallest irreducible binary polynomial of degree k,
// found by search (a few microseconds; deterministic).
//
// k must be in [2, 64].
func New(k int) (Field, error) {
	if k < 2 || k > 64 {
		return Field{}, fmt.Errorf("gf2k: k must be in [2,64], got %d", k)
	}
	taps, err := findIrreducibleTaps(k)
	if err != nil {
		return Field{}, err
	}
	return Field{k: k, taps: taps}, nil
}

// MustNew is New but panics on error; for use with constant k in tests,
// examples and benchmarks.
func MustNew(k int) Field {
	f, err := New(k)
	if err != nil {
		panic(err)
	}
	return f
}

// WithCounters returns a copy of the field that records every operation in c.
func (f Field) WithCounters(c *metrics.Counters) Field {
	f.ctr = c
	return f
}

// Counters returns the metrics sink attached with WithCounters, or nil.
func (f Field) Counters() *metrics.Counters { return f.ctr }

// K returns the extension degree k.
func (f Field) K() int { return f.k }

// Order returns the field size p = 2^k as a float64 (exact for k ≤ 53,
// otherwise the nearest representable value). Used for probability bounds.
func (f Field) Order() float64 {
	return float64(uint64(1)) * pow2(f.k)
}

func pow2(k int) float64 {
	v := 1.0
	for i := 0; i < k; i++ {
		v *= 2
	}
	return v
}

// Modulus returns the reduction polynomial's coefficients below x^k.
// The full modulus is x^k + Modulus().
func (f Field) Modulus() uint64 { return f.taps }

// mask returns the bitmask of valid element bits.
func (f Field) mask() uint64 {
	if f.k == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << f.k) - 1
}

// Valid reports whether a is a canonical element of the field.
func (f Field) Valid(a Element) bool { return uint64(a)&^f.mask() == 0 }

// Add returns a+b. In characteristic 2 subtraction is identical.
func (f Field) Add(a, b Element) Element {
	if f.ctr != nil {
		f.ctr.AddFieldAdds(1)
	}
	return a ^ b
}

// Mul returns a·b.
func (f Field) Mul(a, b Element) Element {
	if f.ctr != nil {
		f.ctr.AddFieldMuls(1)
	}
	if f.tbl != nil {
		return f.mulTable(a, b)
	}
	hi, lo := clmul64(uint64(a), uint64(b))
	return Element(f.reduce(hi, lo))
}

// Sqr returns a².
func (f Field) Sqr(a Element) Element { return f.Mul(a, a) }

// Exp returns a^e (e ≥ 0), with a^0 = 1 including 0^0 = 1.
func (f Field) Exp(a Element, e uint64) Element {
	result := Element(1)
	base := a
	for e > 0 {
		if e&1 == 1 {
			result = f.Mul(result, base)
		}
		base = f.Mul(base, base)
		e >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse of a. It panics if a is zero; the
// protocols only ever invert differences of distinct evaluation points.
func (f Field) Inv(a Element) Element {
	if a == 0 {
		panic("gf2k: inverse of zero")
	}
	if f.ctr != nil {
		f.ctr.AddFieldInvs(1)
	}
	if f.tbl != nil {
		return f.invTable(a)
	}
	// a^(2^k − 2) = a^{-1}. Addition-chain-free square-and-multiply: the
	// exponent is 111...10 in binary (k−1 ones followed by a zero).
	result := Element(1)
	sq := a // a^(2^0)
	for i := 1; i < f.k; i++ {
		sq = f.mulUncounted(sq, sq) // a^(2^i)
		result = f.mulUncounted(result, sq)
	}
	return result
}

// mulUncounted multiplies without touching the counters (used inside Inv so
// an inversion is counted as a single Inv, matching the paper's accounting
// of "basic operations").
func (f Field) mulUncounted(a, b Element) Element {
	hi, lo := clmul64(uint64(a), uint64(b))
	return Element(f.reduce(hi, lo))
}

// Div returns a/b. It panics if b is zero.
func (f Field) Div(a, b Element) Element { return f.Mul(a, f.Inv(b)) }

// BatchInv returns the multiplicative inverses of all elements of a using
// Montgomery's trick: one field inversion plus 3(n−1) multiplications,
// instead of n inversions. An inversion costs ~2(k−1) multiplications
// (Fermat exponentiation), so for k=32 this is a ~20× reduction in field
// work for n ≥ 8. It returns an error if any element is zero.
func (f Field) BatchInv(a []Element) ([]Element, error) {
	n := len(a)
	out := make([]Element, n)
	if n == 0 {
		return out, nil
	}
	// Prefix products: out[i] = a[0]·…·a[i].
	for i, v := range a {
		if v == 0 {
			return nil, fmt.Errorf("gf2k: batch inverse of zero (index %d)", i)
		}
		if i == 0 {
			out[0] = v
		} else {
			out[i] = f.Mul(out[i-1], v)
		}
	}
	acc := out[n-1]
	// One inversion of the total product, then peel off factors backwards:
	// inv(a[i]) = inv(a[0]·…·a[i]) · (a[0]·…·a[i−1]).
	inv := f.Inv(acc)
	for i := n - 1; i > 0; i-- {
		out[i] = f.Mul(inv, out[i-1])
		inv = f.Mul(inv, a[i])
	}
	out[0] = inv
	return out, nil
}

// Rand returns a uniformly random field element read from r.
func (f Field) Rand(r io.Reader) (Element, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("gf2k: read randomness: %w", err)
	}
	return Element(binary.LittleEndian.Uint64(buf[:]) & f.mask()), nil
}

// ElementFromID maps a 1-based player identifier to the field element with
// the same bit pattern. Player IDs must be nonzero and distinct, and the
// paper evaluates polynomials "at the players' id's"; this works for all
// id < 2^k.
func (f Field) ElementFromID(id int) (Element, error) {
	if id <= 0 {
		return 0, fmt.Errorf("gf2k: player id must be positive, got %d", id)
	}
	e := Element(uint64(id))
	if !f.Valid(e) {
		return 0, fmt.Errorf("gf2k: player id %d does not fit in GF(2^%d)", id, f.k)
	}
	return e, nil
}

// ByteLen returns the number of bytes needed to encode one element, ⌈k/8⌉.
// The paper measures communication in messages "of size k"; wire encodings
// use exactly this many bytes per element.
func (f Field) ByteLen() int { return (f.k + 7) / 8 }

// AppendElement appends the ⌈k/8⌉-byte little-endian encoding of a to dst.
func (f Field) AppendElement(dst []byte, a Element) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(a))
	return append(dst, buf[:f.ByteLen()]...)
}

// ReadElement decodes one element from the front of src, returning the
// element and the remaining bytes.
func (f Field) ReadElement(src []byte) (Element, []byte, error) {
	n := f.ByteLen()
	if len(src) < n {
		return 0, nil, fmt.Errorf("gf2k: short element encoding: have %d bytes, need %d", len(src), n)
	}
	var buf [8]byte
	copy(buf[:], src[:n])
	e := Element(binary.LittleEndian.Uint64(buf[:]))
	if !f.Valid(e) {
		return 0, nil, fmt.Errorf("gf2k: element encoding out of range for GF(2^%d)", f.k)
	}
	return e, src[n:], nil
}

// AppendElements appends the encodings of all elements in a.
func (f Field) AppendElements(dst []byte, a []Element) []byte {
	for _, e := range a {
		dst = f.AppendElement(dst, e)
	}
	return dst
}

// ReadElements decodes exactly count elements from the front of src.
func (f Field) ReadElements(src []byte, count int) ([]Element, []byte, error) {
	out := make([]Element, 0, count)
	var (
		e   Element
		err error
	)
	for i := 0; i < count; i++ {
		e, src, err = f.ReadElement(src)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, e)
	}
	return out, src, nil
}

// reduce reduces a 128-bit carry-less product modulo x^k + taps.
func (f Field) reduce(hi, lo uint64) uint64 {
	for {
		d := deg128(hi, lo)
		if d < f.k {
			return lo
		}
		shift := d - f.k
		// XOR (x^k + taps) << shift into (hi, lo).
		mhi, mlo := shl128(f.modHi(), f.modLo(), shift)
		hi ^= mhi
		lo ^= mlo
	}
}

// modLo and modHi give the full modulus x^k + taps as a 128-bit value.
func (f Field) modLo() uint64 {
	if f.k == 64 {
		return f.taps
	}
	return f.taps | (uint64(1) << f.k)
}

func (f Field) modHi() uint64 {
	if f.k == 64 {
		return 1
	}
	return 0
}

// clmul64 computes the 128-bit carry-less (GF(2)[x]) product of a and b.
func clmul64(a, b uint64) (hi, lo uint64) {
	for b != 0 {
		i := bits.TrailingZeros64(b)
		b &= b - 1
		lo ^= a << i
		if i != 0 {
			hi ^= a >> (64 - i)
		}
	}
	return hi, lo
}

// deg128 returns the degree of the binary polynomial in (hi, lo), or -1 for
// the zero polynomial.
func deg128(hi, lo uint64) int {
	if hi != 0 {
		return 127 - bits.LeadingZeros64(hi)
	}
	return 63 - bits.LeadingZeros64(lo)
}

// shl128 shifts (hi, lo) left by s bits (0 ≤ s ≤ 127).
func shl128(hi, lo uint64, s int) (uint64, uint64) {
	switch {
	case s == 0:
		return hi, lo
	case s < 64:
		return hi<<s | lo>>(64-s), lo << s
	default:
		return lo << (s - 64), 0
	}
}
