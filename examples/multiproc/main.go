// Command multiproc is the N-process soak harness for the per-player
// beacond daemons: it builds beacond, runs the dealer ceremony, launches
// one OS process per player, SIGKILLs a minority of them mid-batch,
// restarts the victims, and verifies that
//
//   - the survivors keep opening coins while the victims are down,
//   - the restarted daemons rejoin and every process exits cleanly, and
//   - all n public coin logs are byte-identical to each other AND to a
//     reference run of the same cluster that was never interrupted —
//     crash + recovery must be invisible in the beacon's output stream.
//
// The interrupted leg also exercises the observability surface end to end:
// every daemon serves /metrics on its peers.yaml http: address and the
// harness scrapes all of them mid-run (the exposition must parse and carry
// the per-peer watermark-lag and round-latency series), runs beaconctl
// status against the live cluster during the outage (the victims must be
// flagged) and again after the rejoin (the cluster must read healthy), and
// finally merges all n per-daemon obs traces with obs.MergeJSONL into one
// canonically ordered cluster timeline, written to merged-timeline.jsonl
// next to the raw traces.
//
// Run it from the repository root:
//
//	go run ./examples/multiproc
//	go run ./examples/multiproc -n 7 -kill 1 -emit 50 -workdir soak-out -keep
//
// Unless -reshare=false, a third leg (reshare.go) then exercises the
// dealer-free resharing machinery over the same CLI surface: a live 7→9
// committee change with the leaving member SIGKILLed mid-reshare, a
// byte-identity check of the post-handover stream against a never-reshared
// reference, and a proactive share refresh that must rotate every share
// store on disk without perturbing the public log.
//
// The CI multiproc job runs exactly this with -workdir so the per-daemon
// obs traces and stdout logs can be uploaded as artifacts when it fails.
// Parameters are tuned so the kill lands after the cluster's first refill:
// the victims' recovery therefore exercises store-snapshot reload, crash
// reconciliation against the coin log, AND the live rejoin catch-up.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/prom"
)

var (
	n        = flag.Int("n", 7, "cluster size (n ≥ 6t+1)")
	t        = flag.Int("t", 1, "fault bound; ⌊t⌋ daemons are killed")
	kill     = flag.Int("kill", 0, "how many daemons to SIGKILL (default t)")
	emit     = flag.Int("emit", 50, "coins per run; every daemon stops at this log length")
	killAt   = flag.Int("kill-at", 30, "SIGKILL the victims once their logs reach this many coins")
	interval = flag.Duration("interval", 75*time.Millisecond, "emission pacing (-emit-interval)")
	seed     = flag.Int64("seed", 7, "deterministic -rng-seed base for both runs")
	workdir  = flag.String("workdir", "", "working directory (default: a temp dir)")
	keep     = flag.Bool("keep", false, "keep the working directory on success")
	verbose  = flag.Bool("v", false, "stream daemon stdout to the console")
	reshare  = flag.Bool("reshare", true, "also run the dealer-free resharing leg (7→9 handover + proactive refresh)")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "soak: FAIL:", err)
		os.Exit(1)
	}
}

func run() error {
	if *kill == 0 {
		*kill = *t
	}
	if *kill > *t {
		return fmt.Errorf("killing %d > t=%d daemons cannot work: the BW decoder tolerates at most t missing/faulty players", *kill, *t)
	}
	dir := *workdir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "beacond-soak-*"); err != nil {
			return err
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	fmt.Printf("soak: workdir %s\n", dir)

	bin := filepath.Join(dir, "beacond")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/beacond").CombinedOutput(); err != nil {
		return fmt.Errorf("build beacond: %v\n%s", err, out)
	}
	ctl := filepath.Join(dir, "beaconctl")
	if out, err := exec.Command("go", "build", "-o", ctl, "./cmd/beaconctl").CombinedOutput(); err != nil {
		return fmt.Errorf("build beaconctl: %v\n%s", err, out)
	}

	// Leg 1: the interrupted run — kill ⌊t⌋ daemons mid-batch, restart them.
	soakDir := filepath.Join(dir, "soak")
	if err := runCluster(bin, ctl, soakDir, true); err != nil {
		return fmt.Errorf("interrupted run: %w (artifacts in %s)", err, dir)
	}
	// Observability post-mortem of the interrupted leg: every daemon's obs
	// trace must merge into one canonically ordered cluster timeline.
	if err := mergeClusterTimeline(soakDir); err != nil {
		return fmt.Errorf("cluster timeline: %w (artifacts in %s)", err, dir)
	}
	// Leg 2: the reference run — same seeds, same cluster, no interruption.
	refDir := filepath.Join(dir, "reference")
	if err := runCluster(bin, ctl, refDir, false); err != nil {
		return fmt.Errorf("reference run: %w (artifacts in %s)", err, dir)
	}

	// Verdict: unanimity within the interrupted run, and byte-equality of
	// the interrupted stream against the uninterrupted reference.
	ref, err := os.ReadFile(coinLog(soakDir, 0))
	if err != nil {
		return err
	}
	if got := strings.Count(string(ref), "\n"); got != *emit {
		return fmt.Errorf("player 0 opened %d coins, want %d", got, *emit)
	}
	for i := 1; i < *n; i++ {
		b, err := os.ReadFile(coinLog(soakDir, i))
		if err != nil {
			return err
		}
		if string(b) != string(ref) {
			return fmt.Errorf("player %d's log differs from player 0's within the interrupted run (artifacts in %s)", i, dir)
		}
	}
	unref, err := os.ReadFile(coinLog(refDir, 0))
	if err != nil {
		return err
	}
	if string(unref) != string(ref) {
		return fmt.Errorf("interrupted run's stream differs from the uninterrupted reference (artifacts in %s)", dir)
	}

	fmt.Printf("soak: PASS — %d daemons, %d killed+restarted, %d coins, all logs byte-identical to the uninterrupted reference\n",
		*n, *kill, *emit)

	// Leg 3: the dealer-free resharing leg — a live 7→9 committee change
	// under a mid-reshare SIGKILL of the leaving member, a stream-identity
	// check against a never-reshared reference, and a proactive share
	// refresh that must rotate every store without touching the public log.
	if *reshare {
		if err := runReshareLeg(bin, ctl, filepath.Join(dir, "reshare")); err != nil {
			return fmt.Errorf("reshare leg: %w (artifacts in %s)", err, dir)
		}
	}
	if !*keep && *workdir == "" {
		os.RemoveAll(dir)
	}
	return nil
}

func coinLog(dataDir string, player int) string {
	return filepath.Join(dataDir, "data", fmt.Sprintf("player-%03d.coins", player))
}

// runCluster performs one full cluster lifecycle under base: ceremony,
// launch, optional kill/restart (with live observability checks), and a
// clean unanimous exit.
func runCluster(bin, ctl, base string, interrupt bool) error {
	dataDir := filepath.Join(base, "data")
	traceDir := filepath.Join(base, "traces")
	logDir := filepath.Join(base, "logs")
	for _, d := range []string{dataDir, traceDir, logDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return err
		}
	}
	cfgPath := filepath.Join(base, "peers.yaml")
	httpAddrs, err := writePeersYAML(cfgPath)
	if err != nil {
		return err
	}

	if out, err := exec.Command(bin, "-deal", "-config", cfgPath, "-data", dataDir,
		"-insecure-rand", "-rng-seed", fmt.Sprint(*seed)).CombinedOutput(); err != nil {
		return fmt.Errorf("ceremony: %v\n%s", err, out)
	}

	daemons := make([]*exec.Cmd, *n)
	launch := func(i int) error {
		cmd := exec.Command(bin,
			"-player", fmt.Sprint(i), "-config", cfgPath, "-data", dataDir,
			"-emit", fmt.Sprint(*emit), "-emit-interval", interval.String(),
			"-round-timeout", "2s", "-dial-backoff", "250ms",
			"-insecure-rand", "-rng-seed", fmt.Sprint(*seed),
			"-addr", httpAddrs[i], "-trace", filepath.Join(traceDir, fmt.Sprintf("player-%d.jsonl", i)))
		logF, err := os.OpenFile(filepath.Join(logDir, fmt.Sprintf("player-%d.log", i)),
			os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		if *verbose {
			cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		} else {
			cmd.Stdout, cmd.Stderr = logF, logF
		}
		if err := cmd.Start(); err != nil {
			logF.Close()
			return err
		}
		daemons[i] = cmd
		return nil
	}
	for i := 0; i < *n; i++ {
		if err := launch(i); err != nil {
			return fmt.Errorf("launch player %d: %w", i, err)
		}
	}

	if interrupt {
		// Let the cluster work through its first refill, then SIGKILL the
		// victims mid-stream — no graceful persist, no socket shutdown.
		victims := make([]int, *kill)
		for v := range victims {
			victims[v] = 1 + v // player 0 stays up as the comparison anchor
		}
		for _, v := range victims {
			if err := waitLogLines(dataDir, v, *killAt, 60*time.Second); err != nil {
				return err
			}
		}
		// Mid-run, cluster at full strength: every daemon's /metrics must
		// parse and carry the cross-process correlation series.
		if err := checkMetrics(httpAddrs); err != nil {
			return fmt.Errorf("mid-run metrics scrape: %w", err)
		}
		fmt.Printf("soak: scraped /metrics from all %d daemons mid-run\n", *n)
		for _, v := range victims {
			if err := daemons[v].Process.Kill(); err != nil {
				return fmt.Errorf("kill player %d: %w", v, err)
			}
			daemons[v].Wait()
			fmt.Printf("soak: killed player %d at ≥%d coins\n", v, *killAt)
		}
		// Survivors must demote the victims and keep the stream moving on
		// their own before we bring the victims back.
		if err := waitLogLines(dataDir, 0, *killAt+3, 60*time.Second); err != nil {
			return fmt.Errorf("survivors stalled after the kill: %w", err)
		}
		// The operator's view during the outage: beaconctl status must flag
		// every victim as unhealthy against the live survivors.
		out, err := exec.Command(ctl, "status", "-config", cfgPath, "-lag", "3").CombinedOutput()
		if err != nil {
			return fmt.Errorf("beaconctl status during outage: %v\n%s", err, out)
		}
		if got := strings.Count(string(out), "DOWN"); got < *kill {
			return fmt.Errorf("beaconctl status flagged %d daemons DOWN during the outage, want ≥ %d:\n%s",
				got, *kill, out)
		}
		fmt.Printf("soak: beaconctl flagged the outage (%d DOWN)\n", strings.Count(string(out), "DOWN"))
		for _, v := range victims {
			if err := launch(v); err != nil {
				return fmt.Errorf("restart player %d: %w", v, err)
			}
			fmt.Printf("soak: restarted player %d\n", v)
		}
		// And after the rejoin: once the victims' logs catch back up, a
		// status sweep must read healthy again — no DOWN, no STRAGGLER.
		for _, v := range victims {
			if err := waitLogLines(dataDir, v, *killAt+3, 60*time.Second); err != nil {
				return fmt.Errorf("victim %d never caught up after restart: %w", v, err)
			}
		}
		if err := waitStatusHealthy(ctl, cfgPath, 30*time.Second); err != nil {
			return err
		}
		fmt.Printf("soak: beaconctl reads the rejoined cluster healthy\n")
	}

	var firstErr error
	for i, cmd := range daemons {
		if err := cmd.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("player %d exited: %w (see %s)", i, err,
				filepath.Join(logDir, fmt.Sprintf("player-%d.log", i)))
		}
	}
	return firstErr
}

// waitLogLines polls player i's public coin log until it holds at least
// `want` entries.
func waitLogLines(dataDir string, player, want int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	path := coinLog(filepath.Dir(dataDir), player)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(path); err == nil && strings.Count(string(b), "\n") >= want {
			return nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("player %d's log never reached %d coins within %v", player, want, timeout)
}

// writePeersYAML reserves 2n loopback ports (transport + observability per
// peer) and writes the cluster config; the http: addresses are returned so
// the harness can scrape the daemons directly. Batch 40 over seed 24 with
// threshold 6 puts the first refill at coin 20, safely before the default
// -kill-at of 30, and leaves enough coins that no second refill lands near
// the end of the run.
func writePeersYAML(path string) ([]string, error) {
	reserve := func() (string, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", err
		}
		addr := ln.Addr().String()
		ln.Close()
		return addr, nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: soak\nsecret: %s\n", strings.Repeat("ab", 32))
	fmt.Fprintf(&b, "t: %d\nk: 32\nbatch: 40\nthreshold: 6\nseedcoins: 24\npeers:\n", *t)
	httpAddrs := make([]string, *n)
	for i := 0; i < *n; i++ {
		addr, err := reserve()
		if err != nil {
			return nil, err
		}
		if httpAddrs[i], err = reserve(); err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "  - id: %d\n    addr: %s\n    http: %s\n", i, addr, httpAddrs[i])
	}
	return httpAddrs, os.WriteFile(path, []byte(b.String()), 0o644)
}

// checkMetrics scrapes every daemon's /metrics and asserts the exposition
// parses and carries the series the cluster dashboards key on: the
// per-peer watermark-lag gauges, the round-duration histogram, and the
// emit-latency histogram with real observations behind it.
func checkMetrics(httpAddrs []string) error {
	client := &http.Client{Timeout: 5 * time.Second}
	for i, addr := range httpAddrs {
		resp, err := client.Get("http://" + addr + "/metrics")
		if err != nil {
			return fmt.Errorf("player %d: %w", i, err)
		}
		samples, err := prom.ParseText(resp.Body)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("player %d: exposition does not parse: %w", i, err)
		}
		if _, ok := prom.Value(samples, "beacond_round"); !ok {
			return fmt.Errorf("player %d: beacond_round missing", i)
		}
		if lags := prom.Find(samples, "simnet_peer_watermark_lag"); len(lags) != *n {
			return fmt.Errorf("player %d: want %d simnet_peer_watermark_lag series (one per roster entry), got %d",
				i, *n, len(lags))
		}
		for _, name := range []string{"simnet_round_duration_seconds_count", "beacond_emit_latency_seconds_count"} {
			if v, ok := prom.Value(samples, name); !ok || v <= 0 {
				return fmt.Errorf("player %d: %s absent or zero mid-run (%v, %v)", i, name, v, ok)
			}
		}
	}
	return nil
}

// waitStatusHealthy polls beaconctl status until no row is flagged DOWN or
// STRAGGLER — the operator's definition of a recovered cluster.
func waitStatusHealthy(ctl, cfgPath string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last []byte
	for time.Now().Before(deadline) {
		out, err := exec.Command(ctl, "status", "-config", cfgPath, "-lag", "5").CombinedOutput()
		if err == nil && !strings.Contains(string(out), "DOWN") && !strings.Contains(string(out), "STRAGGLER") {
			return nil
		}
		last = out
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("cluster never read healthy after the rejoin; last status:\n%s", last)
}

// mergeClusterTimeline fuses the interrupted leg's n per-daemon obs traces
// into one canonically ordered cluster timeline (merged-timeline.jsonl next
// to the raw traces — the artifact CI uploads on failure) and verifies the
// merge invariants: every daemon contributed, order is (epoch, round,
// origin), and sequence numbers were renumbered globally.
func mergeClusterTimeline(base string) error {
	streams := map[int]io.Reader{}
	files := make([]*os.File, 0, *n)
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	for i := 0; i < *n; i++ {
		f, err := os.Open(filepath.Join(base, "traces", fmt.Sprintf("player-%d.jsonl", i)))
		if err != nil {
			return err
		}
		files = append(files, f)
		streams[i] = f
	}
	merged, err := obs.MergeJSONL(streams)
	if err != nil {
		return err
	}
	outPath := filepath.Join(base, "traces", "merged-timeline.jsonl")
	out, err := os.Create(outPath)
	if err != nil {
		return err
	}
	j := obs.NewJSONL(out)
	for _, e := range merged {
		j.Emit(e)
	}
	if err := j.Flush(); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}

	origins := map[int]bool{}
	for i, e := range merged {
		origins[e.Origin] = true
		if e.Seq != uint64(i+1) {
			return fmt.Errorf("event %d: seq not renumbered (got %d)", i, e.Seq)
		}
		if i == 0 {
			continue
		}
		p := merged[i-1]
		if e.Epoch < p.Epoch ||
			(e.Epoch == p.Epoch && e.Round < p.Round) ||
			(e.Epoch == p.Epoch && e.Round == p.Round && e.Origin < p.Origin) {
			return fmt.Errorf("event %d: canonical (epoch, round, origin) order violated: (%d,%d,%d) after (%d,%d,%d)",
				i, e.Epoch, e.Round, e.Origin, p.Epoch, p.Round, p.Origin)
		}
	}
	if len(origins) != *n {
		return fmt.Errorf("merged timeline carries %d origins, want all %d daemons", len(origins), *n)
	}
	fmt.Printf("soak: merged %d trace events from %d daemons into %s\n", len(merged), *n, outPath)
	return nil
}
