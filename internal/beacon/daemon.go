package beacon

// Daemon is the multi-process deployment of the beacon: one process per
// player, each running its own Coin-Gen/Coin-Expose state machine over the
// authenticated peer transport (simnet.NewPeer) instead of hosting all n
// players in one process like Service does.
//
// Lifecycle:
//
//   1. Ceremony (once): DealCluster runs the one-time trusted dealer and
//      writes every player's initial store; the operator distributes each
//      player-NNN.* file set to its machine (docs/OPERATIONS.md).
//   2. Each daemon loads its own store, reconciles it against its public
//      coin log (the store snapshot is only taken at refill boundaries, so
//      after a crash the log is ahead of the snapshot — the difference is
//      discarded to realign the cursor), and joins the cluster.
//   3. Joining is self-synchronizing, with no extra consensus round:
//      - Cold start: no peer is running rounds yet. Wait for the full
//        mesh, agree on the longest public log among the peers (a crashed
//        cluster's logs can differ by the final in-flight coins), backfill
//        and fast-forward to it, and start at round 0 together.
//      - Rejoin: the cluster is live. Ask the most advanced peer where it
//        is (round R, log position P, refill epoch), fast-forward the
//        store to position P, backfill the missed public values [ours, P)
//        from t+1 peers, and start at round R — peers flush round R's
//        traffic only after our connections are already up, and their
//        barriers re-admit us as soon as our first status/done markers
//        arrive. A refill inside the join lag would desynchronize the
//        position↔round alignment, so the join waits one out when it is
//        imminent.
//   4. Emission loop: one Next() per iteration — exposure rounds plus the
//      occasional inline blocking refill, exactly the Fig. 1 loop. Every
//      opened coin is appended to the public log; the store+meta snapshot
//      is rewritten after each refill and at graceful shutdown.
//
// A daemon that was down across a refill cannot rejoin (its store lacks
// the shares of the batch minted while it was gone) — it fails with a
// clear epoch-mismatch error, and the operator recovers it with a
// proactive reshare: the member re-enters the ceremony as a stale
// participant (ReshareConfig.Stale) and receives fresh shares. This is
// inherent: shares are secrets, so no honest peer can hand them over
// directly — only a resharing ceremony can re-arm the member. The same
// machinery rotates the committee itself: arm the daemons with the
// next-generation roster (DaemonConfig.ReshareNext), let them negotiate a
// cutover and run RunReshare — see reshare.go and docs/OPERATIONS.md.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/gf2k"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/simnet"
)

// ErrEpochMismatch marks a rejoin attempt by a daemon that missed a refill
// while it was down: its store no longer contains shares for the cluster's
// current batches. No peer can hand shares over — recover the member with
// a proactive reshare, rejoining the ceremony as a stale participant
// (docs/OPERATIONS.md, "Membership change & proactive refresh").
var ErrEpochMismatch = errors.New("beacon: refill epoch mismatch (this player missed a Coin-Gen; recover it with a proactive reshare — docs/OPERATIONS.md)")

// errLogAppend marks a failed write to the on-disk public coin log (disk
// full, I/O error). Once an append fails the in-memory log may be ahead of
// the file, so the operation that hit it must halt rather than retry — the
// next restart heals the tail from the verified in-memory entries.
var errLogAppend = errors.New("beacon: public coin log append failed")

// DaemonConfig parameterizes one per-player daemon.
type DaemonConfig struct {
	// Peers is the cluster roster and protocol parameters (peers.yaml).
	Peers *simnet.PeerConfig
	// Self is this daemon's 0-based player index.
	Self int
	// StateDir holds this player's store, meta, and public coin log. The
	// ceremony (DealCluster) must have populated it.
	StateDir string
	// Emit stops the daemon once the public log holds this many coins
	// (0 = run until the context is cancelled). All daemons configured with
	// the same Emit stop at the same round.
	Emit int
	// EmitInterval paces the beacon: the minimum delay between consecutive
	// coin openings (0 = open coins as fast as the cluster can run rounds).
	// A paced beacon is also what makes crash recovery practical — the
	// rejoin window between two refills lasts EmitInterval × BatchSize
	// instead of milliseconds.
	EmitInterval time.Duration
	// Rand is this player's private randomness for Coin-Gen dealing.
	Rand io.Reader
	// Counters and Tracer instrument the protocol stack as usual. The
	// tracer is additionally stamped with this daemon's correlation keys
	// (origin = Self, epoch = the store's refill epoch, re-stamped after
	// every refill), so per-daemon trace files merge cleanly with
	// obs.MergeJSONL.
	Counters *metrics.Counters
	Tracer   *obs.Tracer
	// Metrics, when non-nil, exports the daemon's Prometheus families
	// (position gauges, emit latency, inline refills — see
	// NewDaemonMetrics). PeerMetrics instruments the peer transport on the
	// same registry (watermarks, lag, demotions, handshakes).
	Metrics     *DaemonMetrics
	PeerMetrics *simnet.PeerMetrics
	// RoundTimeout, WriteTimeout and DialBackoffMax tune the peer
	// transport (zero = simnet defaults).
	RoundTimeout   time.Duration
	WriteTimeout   time.Duration
	DialBackoffMax time.Duration
	// JoinTimeout bounds the whole join choreography — mesh wait, state
	// queries, backfill (default 30s).
	JoinTimeout time.Duration
	// ReshareNext, when non-nil, ARMS the daemon for a dealer-free
	// handover to this next-generation roster (generation must be
	// Peers.Generation+1). An armed daemon negotiates a common cutover
	// position with its armed peers over the Query channel, journals it,
	// pauses emission there and returns ErrReshareCutover from Run once a
	// quorum of peers has confirmed the same position — the caller then
	// runs the RunReshare ceremony and restarts against ReshareNext.
	ReshareNext *simnet.PeerConfig
	// Logf, when non-nil, receives human-readable progress lines.
	Logf func(format string, args ...interface{})
}

// CoreConfig derives the D-PRBG configuration every daemon of the cluster
// must share from the peer config's protocol parameters (zero values take
// the same defaults everywhere — they are part of the config digest, so
// mismatched daemons cannot even connect).
func CoreConfig(pc *simnet.PeerConfig, ctr *metrics.Counters) (core.Config, error) {
	k := pc.K
	if k == 0 {
		k = 32
	}
	field, err := gf2k.New(k)
	if err != nil {
		return core.Config{}, err
	}
	if ctr != nil {
		field = field.WithCounters(ctr)
	}
	batch := pc.Batch
	if batch == 0 {
		batch = 64
	}
	threshold := pc.Threshold
	if threshold == 0 {
		threshold = core.DefaultThreshold
	}
	cfg := core.Config{
		Field:     field,
		N:         pc.N(),
		T:         pc.T,
		BatchSize: batch,
		Threshold: threshold,
		Counters:  ctr,
	}
	return cfg, cfg.Validate()
}

// SeedCoinCount is the ceremony seed size for the cluster: the configured
// seedcoins, defaulting to the batch size.
func SeedCoinCount(pc *simnet.PeerConfig) int {
	if pc.SeedCoins > 0 {
		return pc.SeedCoins
	}
	if pc.Batch > 0 {
		return pc.Batch
	}
	return 64
}

// DealCluster is the bootstrap ceremony: run the one-time trusted dealer
// for the whole cluster and write every player's initial store, meta and
// empty coin log under dir. The operator then moves each player-NNN.* set
// to its machine's state directory. This is the only moment any process
// sees more than one player's shares.
func DealCluster(pc *simnet.PeerConfig, dir string, rnd io.Reader) error {
	cfg, err := CoreConfig(pc, nil)
	if err != nil {
		return err
	}
	gens, err := core.SetupTrusted(cfg, SeedCoinCount(pc), rnd)
	if err != nil {
		return err
	}
	for i, g := range gens {
		if err := SaveStore(dir, i, g.Store()); err != nil {
			return err
		}
		if err := SaveMeta(dir, i, Meta{}); err != nil {
			return err
		}
	}
	return nil
}

// daemonState is the STATE query answer: where this daemon is, precisely
// enough for a rejoiner to project the cluster's position forward.
type daemonState struct {
	Started   bool `json:"started"`
	Refilling bool `json:"refilling"`
	Round     int  `json:"round"`
	LogLen    int  `json:"logLen"`
	Epoch     int  `json:"epoch"`
	Remaining int  `json:"remaining"`
	// Generation is the committee generation this daemon serves (from its
	// meta file; bumped only by a completed reshare + restart).
	Generation int `json:"generation"`
	// Cutover is the committed reshare cutover position, -1 while unarmed
	// or still negotiating.
	Cutover int `json:"cutover"`
}

// DaemonStats is a point-in-time snapshot for expvar/health reporting.
type DaemonStats struct {
	Player     int
	Round      int
	LogLen     int
	Epoch      int
	Remaining  int
	Generation int
	Refilling  bool
	Joined     bool
	// ReshareArmed is true when the daemon holds a next-generation roster;
	// Cutover is the committed handover position (-1 while negotiating).
	ReshareArmed bool
	Cutover      int
	Peers        []bool // outgoing connection liveness, self always false
}

// Daemon is one player's beacon process. Create with NewDaemon, drive with
// Run; Stats is safe to call concurrently from serving goroutines.
type Daemon struct {
	cfg  DaemonConfig
	core core.Config
	gen  *core.Generator
	nw   *simnet.Network
	nd   *simnet.Node
	rnd  io.Reader

	logFile *os.File

	// reshareAttempt mirrors the journal's attempt counter so cutover
	// re-commits do not clobber it (guarded by mu); resharePause marks
	// when the daemon reached the cutover and reshareArmedSeen records
	// which peers have ever answered a RESHARE probe as armed (both used
	// only by the emit goroutine).
	reshareAttempt   int
	resharePause     time.Time
	reshareArmedSeen []bool

	mu    sync.Mutex
	state daemonState
	log   []gf2k.Element
}

// NewDaemon loads player cfg.Self's persisted state, reconciles the store
// against the public log, and brings the peer transport up (dialing starts
// immediately; the round machinery waits for Run).
func NewDaemon(cfg DaemonConfig) (*Daemon, error) {
	if cfg.Peers == nil {
		return nil, errors.New("beacon: daemon needs a peer config")
	}
	coreCfg, err := CoreConfig(cfg.Peers, cfg.Counters)
	if err != nil {
		return nil, err
	}
	if cfg.Self < 0 || cfg.Self >= coreCfg.N {
		return nil, fmt.Errorf("beacon: player %d outside cluster of %d", cfg.Self, coreCfg.N)
	}
	if cfg.JoinTimeout <= 0 {
		cfg.JoinTimeout = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}

	st, err := LoadStore(cfg.StateDir, cfg.Self)
	if err != nil {
		return nil, fmt.Errorf("%w (run the dealer ceremony first: beacond -deal)", err)
	}
	meta, err := LoadMeta(cfg.StateDir, cfg.Self)
	if err != nil {
		return nil, err
	}
	// Generation fencing: a daemon restarted against the wrong roster file
	// — or against state a reshare already superseded — must fail loudly
	// here, not desync later. (The config digest separates the meshes
	// regardless; this check turns a confusing connect-timeout into a
	// pointed error.)
	if st.Generation != cfg.Peers.Generation || meta.Generation != cfg.Peers.Generation {
		return nil, fmt.Errorf("beacon: player %d state is generation %d/%d (store/meta) but peers.yaml says %d — finish the reshare or point the daemon at the matching roster file",
			cfg.Self, st.Generation, meta.Generation, cfg.Peers.Generation)
	}
	if cfg.ReshareNext != nil {
		if _, _, err := CombinedConfig(cfg.Peers, cfg.ReshareNext, 0); err != nil {
			return nil, err
		}
	}
	log, err := LoadCoinLog(CoinLogFile(cfg.StateDir, cfg.Self))
	if err != nil {
		return nil, err
	}
	// Crash reconciliation: the log advances one line per coin while the
	// store snapshot only advances at refill boundaries — replay the gap.
	gap := len(log) - meta.LogLen
	if gap < 0 {
		return nil, fmt.Errorf("beacon: player %d log (%d entries) is behind its store snapshot (%d) — state dir corrupt",
			cfg.Self, len(log), meta.LogLen)
	}
	if err := st.Discard(gap); err != nil {
		return nil, fmt.Errorf("beacon: player %d crash reconciliation: %w", cfg.Self, err)
	}
	gen, err := core.NewFromStore(coreCfg, st)
	if err != nil {
		return nil, err
	}
	logFile, err := openCoinLog(CoinLogFile(cfg.StateDir, cfg.Self), log)
	if err != nil {
		return nil, err
	}

	d := &Daemon{cfg: cfg, core: coreCfg, gen: gen, rnd: cfg.Rand, logFile: logFile, log: log}
	d.state = daemonState{Epoch: meta.Epoch, LogLen: len(log), Remaining: gen.Remaining(),
		Generation: meta.Generation, Cutover: -1}
	if cfg.ReshareNext != nil {
		// A crash after the cutover was journaled must not renegotiate a
		// different position: re-adopt the committed one.
		j, err := LoadReshareJournal(cfg.StateDir)
		if err != nil {
			logFile.Close()
			return nil, err
		}
		if j != nil {
			if j.ToGeneration != cfg.ReshareNext.Generation {
				logFile.Close()
				return nil, fmt.Errorf("beacon: reshare journal targets generation %d but -reshare says %d — mixed roster files?",
					j.ToGeneration, cfg.ReshareNext.Generation)
			}
			d.state.Cutover = j.Cutover
			d.reshareAttempt = j.Attempt
		}
	}

	opts := []simnet.Option{
		simnet.WithMaxRounds(serveMaxRounds),
		simnet.WithQueryHandler(d.handleQuery),
	}
	if cfg.Counters != nil {
		opts = append(opts, simnet.WithCounters(cfg.Counters))
	}
	if cfg.Tracer != nil {
		opts = append(opts, simnet.WithTracer(cfg.Tracer))
	}
	if cfg.RoundTimeout > 0 {
		opts = append(opts, simnet.WithRoundTimeout(cfg.RoundTimeout))
	}
	if cfg.WriteTimeout > 0 {
		opts = append(opts, simnet.WithWriteTimeout(cfg.WriteTimeout))
	}
	if cfg.DialBackoffMax > 0 {
		opts = append(opts, simnet.WithDialBackoff(50*time.Millisecond, cfg.DialBackoffMax))
	}
	if cfg.PeerMetrics != nil {
		opts = append(opts, simnet.WithPeerMetrics(cfg.PeerMetrics))
	}
	nw, err := simnet.NewPeer(cfg.Peers, cfg.Self, opts...)
	if err != nil {
		d.logFile.Close()
		return nil, err
	}
	d.nw = nw
	d.nd = nw.Node(cfg.Self)
	// Correlation keys: every trace event and peer frame this process emits
	// carries who it is and which refill epoch it is in.
	cfg.Tracer.SetOrigin(cfg.Self)
	cfg.Tracer.SetEpoch(meta.Epoch)
	nw.SetEpoch(meta.Epoch)
	cfg.Metrics.registerGauges(d)
	return d, nil
}

// Stats snapshots the daemon's position for health/expvar reporting.
func (d *Daemon) Stats() DaemonStats {
	d.mu.Lock()
	st := d.state
	d.mu.Unlock()
	return DaemonStats{
		Player:       d.cfg.Self,
		Round:        st.Round,
		LogLen:       st.LogLen,
		Epoch:        st.Epoch,
		Remaining:    st.Remaining,
		Generation:   st.Generation,
		Refilling:    st.Refilling,
		Joined:       st.Started,
		ReshareArmed: d.cfg.ReshareNext != nil,
		Cutover:      st.Cutover,
		Peers:        d.nw.PeerConnected(),
	}
}

// Log returns a copy of the public coin log (the beacon output stream).
func (d *Daemon) Log() []gf2k.Element {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]gf2k.Element(nil), d.log...)
}

// handleQuery answers peer STATE and LOG requests on the transport's
// reader goroutines; it must stay quick and lock-light.
func (d *Daemon) handleQuery(from int, req []byte) []byte {
	s := string(req)
	switch {
	case s == "STATE":
		d.mu.Lock()
		st := d.state
		d.mu.Unlock()
		return []byte(fmt.Sprintf("%t %t %d %d %d %d",
			st.Started, st.Refilling, st.Round, st.LogLen, st.Epoch, st.Remaining))
	case s == "RESHARE":
		// Reshare negotiation probe: whether this daemon is armed, and the
		// cutover it has committed (-1 while undecided).
		d.mu.Lock()
		cut := d.state.Cutover
		d.mu.Unlock()
		return []byte(fmt.Sprintf("%t %d", d.cfg.ReshareNext != nil, cut))
	case strings.HasPrefix(s, "LOG "):
		var lo, count int
		if _, err := fmt.Sscanf(s, "LOG %d %d", &lo, &count); err != nil || lo < 0 || count < 1 {
			return nil
		}
		d.mu.Lock()
		hi := lo + count
		if hi > len(d.log) {
			hi = len(d.log)
		}
		var b strings.Builder
		for i := lo; i < hi; i++ {
			b.WriteString(FormatLogEntry(i, d.log[i]))
			b.WriteByte('\n')
		}
		d.mu.Unlock()
		return []byte(b.String())
	}
	return nil
}

func parseState(resp []byte) (daemonState, error) {
	var st daemonState
	_, err := fmt.Sscanf(string(resp), "%t %t %d %d %d %d",
		&st.Started, &st.Refilling, &st.Round, &st.LogLen, &st.Epoch, &st.Remaining)
	return st, err
}

// Run joins the cluster and drives the emission loop until the context is
// cancelled or the Emit target is reached. It owns the node goroutine; all
// other access goes through Stats/Log.
func (d *Daemon) Run(ctx context.Context) error {
	defer d.logFile.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			d.nw.Close() // unblocks EndRound and Query
		case <-stop:
		}
	}()
	defer d.nw.Close()

	if err := d.join(ctx); err != nil {
		return err
	}
	if err := d.emit(ctx); err != nil {
		if errors.Is(err, ErrReshareCutover) {
			// The pause position is the handover state: snapshot it so the
			// ceremony (a separate process invocation) reshapes exactly the
			// tail behind the cutover.
			if perr := d.persist(); perr != nil {
				return perr
			}
		}
		return err
	}
	return d.persist()
}

// reshareStep runs one iteration of the armed daemon's cutover
// negotiation, between coins. It returns (true, nil) while the daemon
// should keep emitting toward the cutover, (false, nil) while paused at it
// waiting for the peer quorum, and (false, ErrReshareCutover) once a
// quorum of peers reports the same committed position.
//
// The negotiation is sticky and raise-only: the committed cutover is the
// maximum over every committed value seen, and a daemon whose log already
// passed the committed position raises a fresh proposal instead of
// adopting one it can no longer honor. Raising strictly increases the
// committed value and proposals are bounded by logLen+margin, so the
// cluster converges within a few rounds of the last arm — without any
// leader, matching the join choreography's self-synchronizing style. A
// quorum of n−t ARMED daemons gates the first proposal, so rolling `kill;
// restart -reshare` across the fleet cannot strand an early-armed daemon
// at a position the others never heard of.
func (d *Daemon) reshareStep(ctx context.Context, logLen int) (bool, error) {
	// margin is how many more coins the cluster emits between proposal and
	// pause — enough rounds for every armed peer to poll and adopt.
	const margin = 3
	n, t := d.core.N, d.core.T
	d.mu.Lock()
	committed := d.state.Cutover
	attempt := d.reshareAttempt
	d.mu.Unlock()

	if d.reshareArmedSeen == nil {
		d.reshareArmedSeen = make([]bool, d.core.N)
	}
	// departed counts peers that were armed earlier but no longer answer:
	// they have left serving mode for the ceremony (or died — in which
	// case the ceremony tolerates them as one of its ≤ t absentees), so
	// they must not stall the confirmation quorum.
	armedCount, confirm, departed, maxSeen := 1, 0, 0, committed
	for j, up := range d.nw.PeerConnected() {
		if j == d.cfg.Self {
			continue
		}
		answered := false
		if up {
			if resp, err := d.nw.Query(j, []byte("RESHARE"), 2*time.Second); err == nil {
				var armed bool
				var cut int
				if _, err := fmt.Sscanf(string(resp), "%t %d", &armed, &cut); err == nil {
					answered = true
					if armed {
						armedCount++
						d.reshareArmedSeen[j] = true
					}
					if cut > maxSeen {
						maxSeen = cut
					}
					if committed >= 0 && cut == committed {
						confirm++
					}
				}
			}
		}
		if !answered && d.reshareArmedSeen[j] {
			departed++
		}
	}

	cut := committed
	switch {
	case maxSeen > committed:
		cut = maxSeen
	case committed < 0 && armedCount >= n-t:
		cut = logLen + margin
	}
	if cut >= 0 && cut < logLen {
		// Armed too late to stop there: raise. Peers adopt the maximum.
		cut = logLen + margin
	}
	if cut != committed {
		if err := SaveReshareJournal(d.cfg.StateDir, ReshareJournal{
			ToGeneration: d.cfg.ReshareNext.Generation, Cutover: cut, Attempt: attempt,
		}); err != nil {
			return false, err
		}
		d.mu.Lock()
		d.state.Cutover = cut
		d.mu.Unlock()
		d.cfg.Logf("reshare cutover committed at log position %d (→ generation %d)",
			cut, d.cfg.ReshareNext.Generation)
		committed = cut
		confirm = 0 // peer answers counted against the old value
	}
	if committed < 0 || logLen < committed {
		return true, nil
	}

	// Paused at the cutover. Leave once n−t daemons (self included) agree
	// on this exact position, counting departed peers as agreement — they
	// paused before they left. A patience valve covers the pathological
	// remainder; the ceremony itself tolerates ≤ t absentees.
	if d.resharePause.IsZero() {
		d.resharePause = time.Now()
	}
	if confirm+departed+1 >= n-t {
		return false, ErrReshareCutover
	}
	if time.Since(d.resharePause) > d.cfg.JoinTimeout {
		d.cfg.Logf("reshare quorum wait timed out (%d/%d confirmed); proceeding to the ceremony", confirm+1, n-t)
		return false, ErrReshareCutover
	}
	select {
	case <-ctx.Done():
		return false, ctx.Err()
	case <-time.After(150 * time.Millisecond):
	}
	return false, nil
}

// join runs the self-synchronizing entry choreography described on the
// package comment: cold start when no peer is running rounds, projection-
// based rejoin otherwise.
func (d *Daemon) join(ctx context.Context) error {
	deadline := time.Now().Add(d.cfg.JoinTimeout)
	meshErr := d.nw.WaitPeers(d.core.N-1, d.cfg.JoinTimeout/2)

	for attempt := 0; ; attempt++ {
		d.cfg.Metrics.joinAttempt()
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("beacon: player %d failed to join within %v", d.cfg.Self, d.cfg.JoinTimeout)
		}
		states, peers := d.queryStates()
		running := -1
		anyRefilling := false
		for i, st := range states {
			if !st.Started {
				continue
			}
			if st.Refilling {
				anyRefilling = true
			}
			if running == -1 || st.Round > states[running].Round {
				running = i
			}
		}
		var err error
		switch {
		case running >= 0 && states[running].Round > 0:
			err = d.rejoin(states, peers, running)
		case running >= 0 && anyRefilling:
			err = errors.New("cluster is mid-refill at startup")
		case running >= 0:
			// Peers have started but none has committed a round yet —
			// their round-0 barriers are waiting for us (for up to the
			// round timeout), so joining round 0 directly is still safe:
			// their round-0 traffic was flushed after the two-way mesh
			// came up and is staged for us.
			err = d.coldStart(states, peers)
		default:
			if meshErr != nil {
				return fmt.Errorf("beacon: cold start needs the full mesh: %w", meshErr)
			}
			if len(peers) < d.core.N-1 {
				time.Sleep(100 * time.Millisecond)
				continue
			}
			err = d.coldStart(states, peers)
		}
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrEpochMismatch) || errors.Is(err, errLogAppend) || ctx.Err() != nil {
			return err
		}
		// Transient (peer mid-refill, window too tight, a query timed
		// out): wait a moment and retry the choreography from scratch.
		d.cfg.Logf("join attempt %d: %v; retrying", attempt, err)
		time.Sleep(200 * time.Millisecond)
	}
}

// queryStates asks every connected peer for its STATE, returning the
// parsed answers and the responding peer ids (aligned slices).
func (d *Daemon) queryStates() ([]daemonState, []int) {
	var states []daemonState
	var peers []int
	for j, up := range d.nw.PeerConnected() {
		if !up {
			continue
		}
		resp, err := d.nw.Query(j, []byte("STATE"), 2*time.Second)
		if err != nil {
			continue
		}
		st, err := parseState(resp)
		if err != nil {
			continue
		}
		states = append(states, st)
		peers = append(peers, j)
	}
	return states, peers
}

// coldStart aligns a cluster whose daemons are all booting: everyone
// fast-forwards to the longest public log (a crashed cluster's logs differ
// by at most the final in-flight coins) and starts at round 0.
func (d *Daemon) coldStart(states []daemonState, peers []int) error {
	d.mu.Lock()
	target, epoch := d.state.LogLen, d.state.Epoch
	d.mu.Unlock()
	for i, st := range states {
		if st.Epoch != epoch {
			return fmt.Errorf("%w: peer %d at epoch %d, this player at %d", ErrEpochMismatch, peers[i], st.Epoch, epoch)
		}
		if st.LogLen > target {
			target = st.LogLen
		}
	}
	if err := d.fastForward(target, peers); err != nil {
		return err
	}
	d.cfg.Logf("cold start at log position %d (epoch %d)", target, epoch)
	return d.start(0)
}

// rejoin re-enters a live cluster one round past the most advanced peer's
// in-flight round. The in-flight round itself is off-limits: a peer
// flushes a round's shares once, and it may have done so before its
// reconnection to us came up, so those bytes can be unrecoverable. Every
// round AFTER it is safe — WaitPeers already confirmed the peers'
// connections to us are bound, and a peer only flushes round R+1 after
// committing R, which is after it answered our STATE query. The skipped
// coin is backfilled from the peers' public logs instead (retrying until
// they commit it), and if the cluster commits another round or two before
// our StartAt lands, the round-keyed staging lets us drain the backlog
// instantly and our done markers re-promote us at each peer within a
// round — the logs stay byte-identical throughout.
func (d *Daemon) rejoin(states []daemonState, peers []int, leadIdx int) error {
	lead := states[leadIdx]
	if lead.Refilling {
		return fmt.Errorf("peer %d is mid-refill", peers[leadIdx])
	}
	d.mu.Lock()
	epoch := d.state.Epoch
	d.mu.Unlock()
	if lead.Epoch != epoch {
		return fmt.Errorf("%w: cluster at epoch %d, this player at %d", ErrEpochMismatch, lead.Epoch, epoch)
	}
	// A refill inside the join lag would mint rounds that are not
	// exposures and desync the position↔round alignment we rely on, so
	// wait it out when one is imminent (margin ≈ the join lag in rounds).
	const margin = 2
	if lead.Remaining-1 < d.core.Threshold+margin {
		return fmt.Errorf("peer %d is about to refill (%d coins left); waiting for it to pass", peers[leadIdx], lead.Remaining)
	}
	// Round lead.Round opens coin lead.LogLen (one exposure per round), so
	// our first round, lead.Round+1, opens coin lead.LogLen+1.
	if err := d.fastForward(lead.LogLen+1, peers); err != nil {
		return err
	}
	d.cfg.Logf("rejoining at round %d, log position %d (epoch %d)", lead.Round+1, lead.LogLen+1, epoch)
	return d.start(lead.Round + 1)
}

// start flips the transport's round machinery on and publishes the join.
func (d *Daemon) start(round int) error {
	if err := d.nw.StartAt(round); err != nil {
		return err
	}
	d.mu.Lock()
	d.state.Started = true
	d.state.Round = round
	d.mu.Unlock()
	return nil
}

// fastForward advances the store cursor to absolute position target and
// backfills the skipped public values from the peers' logs, requiring
// min(t+1, responders) identical answers for every entry. Values opened
// after the peers answered trickle into their logs within a round or two,
// so the fetch retries briefly.
//
// Order matters for retry safety: the whole range is fetched and verified
// BEFORE any local state is touched. A transient backfill failure (query
// timeout, stalled fetch, quorum not met) therefore leaves the store and
// log exactly as they were, so join() can rerun the choreography from the
// same position — Store.Discard is not idempotent, and discarding twice
// for one target would desynchronize this player's share cursor from the
// cluster's forever.
func (d *Daemon) fastForward(target int, peers []int) error {
	d.mu.Lock()
	pos := len(d.log)
	d.mu.Unlock()
	if target < pos {
		return fmt.Errorf("beacon: player %d log (%d entries) is ahead of the cluster position %d — state dirs mixed up?",
			d.cfg.Self, pos, target)
	}
	if target == pos {
		return nil
	}

	need := target - pos
	quorum := d.core.T + 1
	if len(peers) < quorum {
		quorum = len(peers)
	}
	if quorum < 1 {
		return errors.New("beacon: no peers reachable for log backfill")
	}
	deadline := time.Now().Add(d.cfg.JoinTimeout / 2)
	entries := make([]gf2k.Element, 0, need)
	for len(entries) < need {
		got, err := d.fetchLogRange(pos+len(entries), need-len(entries), peers, quorum)
		if err != nil {
			return err
		}
		entries = append(entries, got...)
		if len(entries) < need {
			if time.Now().After(deadline) {
				return fmt.Errorf("beacon: backfill stalled at %d/%d entries", len(entries), need)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}

	// The full range is verified in hand — now commit: advance the share
	// cursor past the coins the cluster opened without us and append their
	// public values to our log.
	if err := d.gen.Store().Discard(need); err != nil {
		return fmt.Errorf("%w: %v", ErrEpochMismatch, err)
	}
	d.syncShared()
	d.mu.Lock()
	var werr error
	for _, v := range entries {
		if _, werr = fmt.Fprintln(d.logFile, FormatLogEntry(len(d.log), v)); werr != nil {
			break
		}
		d.log = append(d.log, v)
	}
	d.state.LogLen = len(d.log)
	d.mu.Unlock()
	if werr != nil {
		// The on-disk log is now behind the in-memory one; retrying the
		// join would double-discard, so this failure is terminal.
		return fmt.Errorf("%w: %v", errLogAppend, werr)
	}
	d.cfg.Logf("backfilled %d missed public coins [%d,%d)", need, pos, target)
	return nil
}

// fetchLogRange fetches log entries [lo, lo+count) from up to `quorum`
// peers and cross-checks them: any disagreement on an entry is a fault and
// aborts the join. Returns however many contiguous verified entries the
// peers could serve (possibly zero if the coins are not yet opened).
func (d *Daemon) fetchLogRange(lo, count int, peers []int, quorum int) ([]gf2k.Element, error) {
	var verified []gf2k.Element
	responders := 0
	for _, j := range shuffledCopy(peers) {
		resp, err := d.nw.Query(j, []byte(fmt.Sprintf("LOG %d %d", lo, count)), 2*time.Second)
		if err != nil {
			continue
		}
		got, err := parseLogEntries(resp, lo)
		if err != nil {
			return nil, fmt.Errorf("beacon: peer %d served a malformed log: %w", j, err)
		}
		if responders == 0 {
			verified = got
		} else {
			shorter := len(verified)
			if len(got) < shorter {
				shorter = len(got)
			}
			for i := 0; i < shorter; i++ {
				if got[i] != verified[i] {
					return nil, fmt.Errorf("beacon: peers disagree on public coin %d (%x vs %x) — Byzantine log server",
						lo+i, uint64(verified[i]), uint64(got[i]))
				}
			}
			if len(got) < len(verified) {
				verified = verified[:len(got)] // only cross-checked entries count
			}
		}
		responders++
		if responders == quorum {
			break
		}
	}
	if responders < quorum {
		return nil, fmt.Errorf("beacon: only %d/%d peers answered the log fetch", responders, quorum)
	}
	return verified, nil
}

// shuffledCopy is a deterministic rotation (not a random shuffle — the
// daemon's randomness budget belongs to the protocol) so repeated fetches
// spread load across peers. The counter is atomic: in-process clusters
// (tests) and concurrent reshare participants share it.
var fetchRotation atomic.Int64

func shuffledCopy(peers []int) []int {
	out := append([]int(nil), peers...)
	sort.Ints(out)
	if len(out) > 1 {
		r := int(fetchRotation.Add(1)) % len(out)
		out = append(out[r:], out[:r]...)
	}
	return out
}

func parseLogEntries(resp []byte, lo int) ([]gf2k.Element, error) {
	var out []gf2k.Element
	for _, line := range strings.Split(string(resp), "\n") {
		if line == "" {
			continue
		}
		var idx int
		var val uint64
		if _, err := fmt.Sscanf(line, "%d %x", &idx, &val); err != nil || idx != lo+len(out) {
			return nil, fmt.Errorf("bad entry %q at offset %d", line, len(out))
		}
		out = append(out, gf2k.Element(val))
	}
	return out, nil
}

// emit is the daemon's main loop: one shared coin per iteration (with
// inline blocking refills when the store runs low), every value appended
// to the public log, the store snapshotted after each refill.
func (d *Daemon) emit(ctx context.Context) error {
	for {
		d.mu.Lock()
		logLen := len(d.log)
		d.mu.Unlock()
		if d.cfg.Emit > 0 && logLen >= d.cfg.Emit {
			d.cfg.Logf("emit target %d reached; stopping", d.cfg.Emit)
			return nil
		}
		if ctx.Err() != nil {
			return nil // graceful: Run persists on the way out
		}
		if d.cfg.ReshareNext != nil {
			emitCoin, err := d.reshareStep(ctx, logLen)
			if err != nil {
				return err
			}
			if !emitCoin {
				continue // paused at the cutover, polling for quorum
			}
		}

		willRefill := d.gen.Remaining() < d.core.Threshold
		if willRefill {
			d.mu.Lock()
			d.state.Refilling = true
			d.mu.Unlock()
			d.cfg.Logf("refill starting at log position %d (epoch %d)", logLen, d.epoch())
		}
		batchesBefore := d.gen.Stats().Batches
		var t0 time.Time
		if d.cfg.Metrics != nil {
			t0 = time.Now()
		}
		v, err := d.gen.Next(d.nd, d.rnd)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("beacon: player %d halted at log position %d: %w", d.cfg.Self, logLen, err)
		}
		refilled := d.gen.Stats().Batches - batchesBefore
		if d.cfg.Metrics != nil {
			d.cfg.Metrics.observeEmit(time.Since(t0).Seconds(), refilled)
		}

		d.mu.Lock()
		_, werr := fmt.Fprintln(d.logFile, FormatLogEntry(len(d.log), v))
		if werr == nil {
			d.log = append(d.log, v)
		}
		d.state.LogLen = len(d.log)
		d.state.Round = d.nd.Round()
		d.state.Remaining = d.gen.Remaining()
		if refilled > 0 {
			d.state.Epoch += refilled
			d.state.Refilling = false
		}
		newEpoch := d.state.Epoch
		d.mu.Unlock()
		if refilled > 0 {
			// Re-stamp the correlation keys: trace events and peer frames
			// emitted from here on belong to the new epoch.
			d.cfg.Tracer.SetEpoch(newEpoch)
			d.nw.SetEpoch(newEpoch)
		}
		if werr != nil {
			// Halt without persisting: the meta snapshot must not record a
			// LogLen the on-disk log never reached, and the restart replays
			// the lost tail from peers.
			return fmt.Errorf("%w: player %d at log position %d: %v", errLogAppend, d.cfg.Self, logLen, werr)
		}

		if refilled > 0 {
			if err := d.persist(); err != nil {
				return err
			}
			d.cfg.Logf("refill complete: epoch %d, %d coins in store", d.epoch(), d.gen.Remaining())
		}

		if d.cfg.EmitInterval > 0 {
			select {
			case <-ctx.Done():
			case <-time.After(d.cfg.EmitInterval):
			}
		}
	}
}

func (d *Daemon) epoch() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state.Epoch
}

// syncShared refreshes the queryable state mirror from the generator.
func (d *Daemon) syncShared() {
	d.mu.Lock()
	d.state.Remaining = d.gen.Remaining()
	d.mu.Unlock()
}

// persist snapshots the store and meta; the log file is already on disk
// (appended per coin, synced by the OS).
func (d *Daemon) persist() error {
	if err := d.logFile.Sync(); err != nil {
		return err
	}
	d.mu.Lock()
	meta := Meta{Epoch: d.state.Epoch, LogLen: len(d.log), Generation: d.state.Generation}
	d.mu.Unlock()
	if err := SaveStore(d.cfg.StateDir, d.cfg.Self, d.gen.Store()); err != nil {
		return err
	}
	return SaveMeta(d.cfg.StateDir, d.cfg.Self, meta)
}
