package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Sink consumes trace events. Implementations must be safe for concurrent
// Emit calls: the Tracer serializes its own emissions, but a sink may be
// shared by several tracers or fed directly by tests.
type Sink interface {
	Emit(Event)
}

// --- ring buffer --------------------------------------------------------------

// Ring is a fixed-capacity in-memory sink that overwrites its oldest events
// when full — the always-on flight recorder. The zero value is unusable;
// call NewRing.
type Ring struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	full    bool
	dropped int64
}

// DefaultRingCapacity is plenty for a multi-batch Coin-Gen run at n ≤ 32.
const DefaultRingCapacity = 1 << 16

// NewRing creates a ring buffer holding up to capacity events
// (DefaultRingCapacity if capacity ≤ 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Emit appends the event, evicting the oldest when at capacity.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next = (r.next + 1) % cap(r.buf)
		r.full = true
		r.dropped++
	}
	r.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if r.full {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Dropped reports how many events were evicted to make room.
func (r *Ring) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// --- JSONL --------------------------------------------------------------------

// JSONL streams events to a writer, one JSON object per line — the
// replayable export format. Write errors are sticky and surfaced by Err
// (Emit cannot fail, matching the Sink interface).
type JSONL struct {
	mu  sync.Mutex
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONL creates a JSONL sink over w. Call Flush before inspecting the
// underlying writer.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	return &JSONL{w: bw, enc: json.NewEncoder(bw)}
}

// Emit writes one line. After the first error it is a no-op.
func (j *JSONL) Emit(e Event) {
	j.mu.Lock()
	if j.err == nil {
		j.err = j.enc.Encode(e)
	}
	j.mu.Unlock()
}

// Flush drains buffered output and returns the first error seen, if any.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	j.err = j.w.Flush()
	return j.err
}

// Err returns the first write/encode error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// ParseJSONL reads a JSONL export back into the event sequence it encodes.
// It is the inverse of the JSONL sink: exporting and parsing yields the
// identical []Event (the round-trip property obs's tests pin down).
//
// A final line not terminated by '\n' is a torn tail — the writer died
// mid-record (SIGKILL during the multiproc soak, a full disk) — and is
// dropped rather than parsed: a truncated JSON object that happens to parse
// would silently corrupt the last event. Terminated lines that fail to
// parse are still hard errors, with the line number.
func ParseJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	br := bufio.NewReaderSize(r, 64*1024)
	line := 0
	for {
		b, err := br.ReadBytes('\n')
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("obs: read JSONL: %w", err)
		}
		if err == io.EOF && len(b) > 0 {
			// Torn tail: bytes after the last newline. Drop them.
			return out, nil
		}
		if err == io.EOF {
			return out, nil
		}
		line++
		b = b[:len(b)-1] // strip '\n'
		if len(b) > 0 && b[len(b)-1] == '\r' {
			b = b[:len(b)-1]
		}
		if len(b) == 0 {
			continue
		}
		var e Event
		if jerr := json.Unmarshal(b, &e); jerr != nil {
			return nil, fmt.Errorf("obs: parse JSONL line %d: %w", line, jerr)
		}
		out = append(out, e)
	}
}

// Tee fans every event out to each sink in order.
func Tee(sinks ...Sink) Sink { return teeSink(sinks) }

type teeSink []Sink

func (t teeSink) Emit(e Event) {
	for _, s := range t {
		s.Emit(e)
	}
}

// --- durations ----------------------------------------------------------------

// DurationSink measures wall-clock span durations. Events carry no
// timestamps (they would break the determinism goldens), so this sink
// records time.Now at each EvSpanBegin and calls fn with the elapsed time at
// the matching EvSpanEnd — the bridge from obs spans to latency histograms
// (beacond feeds phase durations into prom through one of these).
//
// Spans that never end are forgotten when the sink exceeds its internal
// high-water mark, bounding memory under span leaks.
type DurationSink struct {
	fn  func(name string, kind SpanKind, d time.Duration)
	now func() time.Time

	mu      sync.Mutex
	started map[uint64]time.Time
}

// NewDurationSink creates a DurationSink calling fn at every span close.
func NewDurationSink(fn func(name string, kind SpanKind, d time.Duration)) *DurationSink {
	return &DurationSink{fn: fn, now: time.Now, started: make(map[uint64]time.Time)}
}

// Emit implements Sink.
func (d *DurationSink) Emit(e Event) {
	switch e.Type {
	case EvSpanBegin:
		d.mu.Lock()
		if len(d.started) > 4096 { // leaked spans: reset rather than grow
			d.started = make(map[uint64]time.Time)
		}
		d.started[e.Span] = d.now()
		d.mu.Unlock()
	case EvSpanEnd:
		d.mu.Lock()
		t0, ok := d.started[e.Span]
		if ok {
			delete(d.started, e.Span)
		}
		now := d.now()
		d.mu.Unlock()
		if ok {
			d.fn(e.Name, e.Kind, now.Sub(t0))
		}
	}
}
