// Command beacongw is the multi-cell beacon gateway: it hosts M
// independent beacon cells (internal/multicell) in one process and serves
// routed randomness over HTTP. One beacond-style cell is one coin stream
// capped by a single protocol executive; the gateway is how the deployment
// scales sideways — cells share no protocol state, tenants are
// consistent-hashed onto cells so each tenant observes one contiguous
// per-cell stream, anonymous draws round-robin, and the router sheds load
// off lagging or saturated cells before it ever rejects.
//
//	beacongw -addr :8544 -cells 4 -n 7 -t 1 -k 32
//
// Tenancy: a request's tenant is the X-Tenant header (or ?tenant=). Tenant
// draws are rate-limited per tenant (-tenant-rate/-tenant-burst) and
// live streams are quota'd (-max-streams), both enforced at the router
// before any cell is touched.
//
// HTTP endpoints:
//
//	GET /v1/coin          one routed coin: {"cell","seq","coin","k"} — the
//	                      (cell, seq) pair names the coin's verifiable
//	                      position in that cell's public stream
//	GET /v1/coins?n=32    one batched draw: n contiguous coins of one
//	                      cell's stream starting at "seq"
//	GET /v1/stream?n=100  Server-Sent Events: one "coin" event per coin,
//	                      each carrying its cell and per-cell sequence
//	                      number (n ≤ 0 or absent: until the client goes)
//	GET /v1/cells         per-cell depth/lag/routing table + router totals
//	                      (the JSON behind `beaconctl cells`)
//	GET /v1/healthz       liveness: cells up, streams active
//	GET /metrics          Prometheus text exposition; per-cell gauges are
//	                      refreshed at scrape time
//
// Degrade responses: 429 + Retry-After when the tenant is rate-limited or
// every live cell is saturated, 503 when no cell is serving at all.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/beacon"
	"repro/internal/core"
	"repro/internal/gf2k"
	"repro/internal/multicell"
	"repro/internal/obs/prom"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// config is the validated flag set of one invocation.
type config struct {
	addr           string
	cells          int
	n, t, k        int
	batch          int
	threshold      int
	highWater      int
	queue          int
	tenantRate     float64
	tenantBurst    int
	maxStreams     int
	maxTenants     int
	replicas       int
	streamInterval time.Duration
	insecureRand   bool
	rngSeed        int64
}

func parseFlags(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("beacongw", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var c config
	fs.StringVar(&c.addr, "addr", "127.0.0.1:8544", "HTTP listen address")
	fs.IntVar(&c.cells, "cells", 4, "number of independent beacon cells")
	fs.IntVar(&c.n, "n", 7, "players per cell (n ≥ 6t+1)")
	fs.IntVar(&c.t, "t", 1, "Byzantine fault bound per cell")
	fs.IntVar(&c.k, "k", 32, "coin field GF(2^k), 2 ≤ k ≤ 64")
	fs.IntVar(&c.batch, "batch", 96, "Coin-Gen batch size M per cell")
	fs.IntVar(&c.threshold, "threshold", core.DefaultThreshold, "per-cell blocking refill threshold")
	fs.IntVar(&c.highWater, "highwater", 64, "per-cell proactive refill high-water mark (must keep refills pipelined: ≥ threshold + seed reserve + expose batch)")
	fs.IntVar(&c.queue, "queue", 256, "per-cell request queue depth")
	fs.Float64Var(&c.tenantRate, "tenant-rate", 0, "per-tenant token-bucket rate in draws/s (0 disables)")
	fs.IntVar(&c.tenantBurst, "tenant-burst", 0, "per-tenant token-bucket burst (default 1 when -tenant-rate is set)")
	fs.IntVar(&c.maxStreams, "max-streams", 4, "concurrent /v1/stream connections per tenant (negative disables the quota)")
	fs.IntVar(&c.maxTenants, "max-tenants", 0, "bound on distinct tracked tenants before they share an overflow bucket (0 = default 8192)")
	fs.IntVar(&c.replicas, "replicas", 0, "consistent-hash virtual nodes per cell (0 = default)")
	fs.DurationVar(&c.streamInterval, "stream-interval", 0, "pacing between pushed stream coins (0 = as fast as draws allow)")
	fs.BoolVar(&c.insecureRand, "insecure-rand", false, "use seeded math/rand instead of crypto/rand (reproducible demos ONLY)")
	fs.Int64Var(&c.rngSeed, "rng-seed", 1, "seed for -insecure-rand")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("beacongw: unexpected arguments %v", fs.Args())
	}
	return &c, nil
}

func (c *config) clusterConfig(m *multicell.Metrics) (multicell.Config, error) {
	field, err := gf2k.New(c.k)
	if err != nil {
		return multicell.Config{}, err
	}
	cfg := multicell.Config{
		Cells: c.cells,
		Cell: beacon.Config{
			Core: core.Config{
				Field:     field,
				N:         c.n,
				T:         c.t,
				BatchSize: c.batch,
				Threshold: c.threshold,
				HighWater: c.highWater,
			},
			QueueDepth: c.queue,
		},
		TenantRate:          c.tenantRate,
		TenantBurst:         c.tenantBurst,
		MaxStreamsPerTenant: c.maxStreams,
		MaxTenants:          c.maxTenants,
		Replicas:            c.replicas,
		StreamInterval:      c.streamInterval,
		Metrics:             m,
	}
	if c.insecureRand {
		cfg.CellRand = insecureCellRand(c.rngSeed)
	}
	return cfg, cfg.Validate()
}

// insecureCellRand is the deterministic per-cell randomness for demos: each
// (cell, player) pair gets a private stream keyed by its own call counter,
// so a cell's coin stream is reproducible regardless of how refills from
// different cells interleave. NEVER for production — the seeds are public.
func insecureCellRand(seed int64) func(cell, player int) io.Reader {
	var mu sync.Mutex
	calls := make(map[[2]int]int64)
	return func(cell, player int) io.Reader {
		mu.Lock()
		calls[[2]int{cell, player}]++
		k := calls[[2]int{cell, player}]
		mu.Unlock()
		return rand.New(rand.NewSource(seed +
			int64(cell)*7_777_777 +
			int64(player)*1009 +
			k*1_000_003))
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	c, err := parseFlags(args, stderr)
	if err != nil {
		return err
	}
	reg := prom.NewRegistry()
	mets := multicell.NewMetrics(reg)
	cfg, err := c.clusterConfig(mets)
	if err != nil {
		return err
	}
	cl, err := multicell.New(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "beacongw: %d cells up (n=%d t=%d per cell, GF(2^%d))\n", c.cells, c.n, c.t, c.k)

	ln, err := net.Listen("tcp", c.addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: newMux(cl, mets, reg, c.k)}
	fmt.Fprintf(stdout, "beacongw: listening on http://%s\n", ln.Addr())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "beacongw: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(stderr, "beacongw: http shutdown: %v\n", err)
	}
	if err := cl.Close(shutCtx); err != nil {
		return fmt.Errorf("beacongw: close cluster: %w", err)
	}
	var draws, coins int64
	for _, st := range cl.CellStats() {
		draws += st.Draws
		coins += st.Coins
	}
	rst := cl.RouterStats()
	fmt.Fprintf(stdout, "beacongw: served %d draws (%d coins) across %d cells; %d rate-limited, %d saturated\n",
		draws, coins, c.cells, rst.RateLimited, rst.Saturated)
	return nil
}

// tenantOf extracts the request's tenant key: X-Tenant header first,
// ?tenant= fallback, empty = anonymous (round-robin routed).
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return r.URL.Query().Get("tenant")
}

func newMux(cl *multicell.Cluster, mets *multicell.Metrics, reg *prom.Registry, k int) *http.ServeMux {
	hexCoin := func(e gf2k.Element) string { return fmt.Sprintf("0x%0*x", (k+3)/4, uint64(e)) }
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/coin", func(w http.ResponseWriter, r *http.Request) {
		coin, err := cl.Draw(r.Context(), tenantOf(r))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, map[string]any{"cell": coin.Cell, "seq": coin.Seq, "coin": hexCoin(coin.Val), "k": k})
	})
	mux.HandleFunc("GET /v1/coins", func(w http.ResponseWriter, r *http.Request) {
		var n int
		if _, err := fmt.Sscanf(r.URL.Query().Get("n"), "%d", &n); err != nil {
			http.Error(w, "beacongw: missing or malformed ?n= coin count", http.StatusBadRequest)
			return
		}
		b, err := cl.DrawN(r.Context(), tenantOf(r), n)
		if err != nil {
			writeErr(w, err)
			return
		}
		coins := make([]string, len(b.Vals))
		for i, v := range b.Vals {
			coins[i] = hexCoin(v)
		}
		writeJSON(w, map[string]any{"cell": b.Cell, "seq": b.Seq, "coins": coins, "k": k})
	})
	mux.HandleFunc("GET /v1/stream", func(w http.ResponseWriter, r *http.Request) {
		flusher, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "beacongw: streaming unsupported by this connection", http.StatusNotImplemented)
			return
		}
		max := 0
		if q := r.URL.Query().Get("n"); q != "" {
			if _, err := fmt.Sscanf(q, "%d", &max); err != nil {
				http.Error(w, "beacongw: malformed ?n= coin count", http.StatusBadRequest)
				return
			}
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-store")
		// Errors after the first flush can only end the stream; the status
		// line is already on the wire. Quota rejections happen before any
		// coin is drawn, so probe by writing the header lazily.
		wroteHeader := false
		err := cl.Stream(r.Context(), tenantOf(r), max, func(coin multicell.Coin) error {
			if !wroteHeader {
				w.WriteHeader(http.StatusOK)
				wroteHeader = true
			}
			payload, err := json.Marshal(map[string]any{
				"cell": coin.Cell, "seq": coin.Seq, "coin": hexCoin(coin.Val), "k": k,
			})
			if err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "event: coin\ndata: %s\n\n", payload); err != nil {
				return err
			}
			flusher.Flush()
			return nil
		})
		if err != nil && !wroteHeader {
			writeErr(w, err)
		}
	})
	mux.HandleFunc("GET /v1/cells", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"cells": cl.CellStats(), "router": cl.RouterStats()})
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		rst := cl.RouterStats()
		status := "ok"
		code := http.StatusOK
		if rst.CellsDown == cl.Cells() {
			status = "down"
			code = http.StatusServiceUnavailable
		} else if rst.CellsDown > 0 {
			status = "degraded"
		}
		w.WriteHeader(code)
		writeJSON(w, map[string]any{
			"status": status, "cells": cl.Cells(), "cells_down": rst.CellsDown,
			"streams_active": rst.StreamsActive,
		})
	})
	metricsHandler := reg.Handler()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		mets.Refresh(cl) // scrape-time snapshot of the per-cell gauges
		metricsHandler.ServeHTTP(w, r)
	})
	return mux
}

// writeErr maps router errors onto HTTP statuses: per-tenant and
// cluster-wide overload are retryable 429s, a dead cluster is 503,
// validation failures 400.
func writeErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, multicell.ErrRateLimited),
		errors.Is(err, multicell.ErrSaturated),
		errors.Is(err, multicell.ErrStreamQuota),
		errors.Is(err, beacon.ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, multicell.ErrAllCellsDown), errors.Is(err, multicell.ErrClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		http.Error(w, err.Error(), 499) // client closed request
	default:
		status := http.StatusInternalServerError
		if strings.Contains(err.Error(), "outside") {
			status = http.StatusBadRequest
		}
		http.Error(w, err.Error(), status)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
