package conformance

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/gf2k"
	"repro/internal/simnet"
	"repro/internal/vss"
)

// vssPlayer is one honest player's output from a VSS ceremony: the verdict
// on the dealer and, when the dealer was accepted and the ceremony
// proceeded to public reconstruction, the reconstructed secrets.
type vssPlayer struct {
	Verdict bool
	Secrets []gf2k.Element
}

// VSSOutcome is the result of one VSS (or Batch-VSS) conformance scenario.
type VSSOutcome struct {
	Env *env
	// Corrupt lists the players running adversarial code; Honest the rest.
	Corrupt, Honest []int
	// DealerCheated records whether the scenario's dealer deviated in a way
	// the paper requires verification to catch (wrong degree, equivocation,
	// silence, inconsistency beyond the error budget).
	DealerCheated bool
	// DealerDisturbed records that the hostile schedule disturbed the
	// dealer itself: the verdict may then legitimately go either way (a
	// slow dealer is a faulty dealer), so Check keeps unanimity and
	// reconstruction agreement but drops verdict exactness.
	DealerDisturbed bool
	// Dealt holds the secrets an honest dealer committed to (nil when the
	// dealer is corrupt — a cheating dealer defines no canonical secret
	// unless accepted, in which case reconstruction unanimity still holds).
	Dealt []gf2k.Element
	// Players[i] is honest player i's output.
	Players map[int]vssPlayer
}

// vssDealer is the dealer index for every VSS scenario.
const vssDealer = 0

// RunVSS executes one VSS conformance scenario: all players run the
// deal → verify → (reconstruct if accepted) ceremony for M secrets, with
// the scenario's attack substituted at the corrupted players. Batch-VSS is
// the same runner with M > 1 (Fig. 3 degenerates to Fig. 2 at M = 1).
func RunVSS(sc Scenario) (*VSSOutcome, error) {
	out := &VSSOutcome{Players: map[int]vssPlayer{}}
	e, err := newEnv(sc, nil, 2)
	if err != nil {
		return nil, err
	}
	out.Env = e

	cfgFor := func(i int) vss.Config {
		return vss.Config{Field: e.field, N: sc.N, T: sc.T, Coins: e.seeds[i]}
	}
	// The secrets an honest dealer shares, drawn from the dealer's private
	// randomness.
	dealerRnd := e.playerRand(vssDealer)
	secrets := make([]gf2k.Element, sc.M)
	for j := range secrets {
		s, err := e.field.Rand(dealerRnd)
		if err != nil {
			return nil, err
		}
		secrets[j] = s
	}

	honest := func(i int) simnet.PlayerFunc {
		return func(nd *simnet.Node) (interface{}, error) {
			var deal []gf2k.Element
			if nd.Index() == vssDealer {
				deal = secrets
			}
			inst, err := vss.Deal(nd, cfgFor(nd.Index()), vssDealer, deal, e.playerRand(nd.Index()))
			if err != nil {
				return nil, err
			}
			ok, err := inst.Verify(nd)
			if err != nil || !ok {
				return vssPlayer{Verdict: ok}, err
			}
			p := vssPlayer{Verdict: true}
			for j := 0; j < sc.M; j++ {
				v, err := inst.Reconstruct(nd, j)
				if err != nil {
					return nil, fmt.Errorf("reconstruct secret %d: %w", j, err)
				}
				p.Secrets = append(p.Secrets, v)
			}
			return p, nil
		}
	}

	fns := make([]simnet.PlayerFunc, sc.N)
	for i := range fns {
		fns[i] = honest(i)
	}
	// Verifier attacks corrupt the last t players; dealer attacks corrupt
	// the dealer. The honest dealer's secrets are reported only when the
	// dealer stays honest.
	lastT := make([]int, 0, sc.T)
	for i := sc.N - sc.T; i < sc.N; i++ {
		lastT = append(lastT, i)
	}
	dealerHonest := true
	switch sc.Attack {
	case "honest":
		// control run: no corruption
	case "wrong-degree-dealer":
		out.Corrupt, dealerHonest, out.DealerCheated = []int{vssDealer}, false, true
		fns[vssDealer] = adversary.VSSWrongDegreeDealer(cfgFor(vssDealer), sc.M, e.attackSeed(vssDealer))
	case "equivocal-dealer":
		out.Corrupt, dealerHonest, out.DealerCheated = []int{vssDealer}, false, true
		fns[vssDealer] = adversary.VSSEquivocalDealer(cfgFor(vssDealer), sc.M, e.attackSeed(vssDealer))
	case "silent-dealer":
		out.Corrupt, dealerHonest, out.DealerCheated = []int{vssDealer}, false, true
		fns[vssDealer] = adversary.VSSSilentDealer(cfgFor(vssDealer), e.attackSeed(vssDealer))
	case "inconsistent-dealer-tolerated":
		// t victims: within the Berlekamp–Welch budget, so the dealing is
		// still a well-defined degree-t sharing and must be accepted.
		out.Corrupt, dealerHonest, out.DealerCheated = []int{vssDealer}, false, false
		victims := honestSet(sc.N, []int{vssDealer})[:sc.T]
		fns[vssDealer] = adversary.VSSInconsistentDealer(cfgFor(vssDealer), sc.M, victims, e.attackSeed(vssDealer))
	case "inconsistent-dealer-overwhelming":
		// 2t victims: more lies than the budget absorbs — reject.
		out.Corrupt, dealerHonest, out.DealerCheated = []int{vssDealer}, false, true
		victims := honestSet(sc.N, []int{vssDealer})[:2*sc.T]
		fns[vssDealer] = adversary.VSSInconsistentDealer(cfgFor(vssDealer), sc.M, victims, e.attackSeed(vssDealer))
	case "false-complainer":
		out.Corrupt = lastT
		for _, i := range lastT {
			fns[i] = adversary.VSSFalseComplainer(cfgFor(i), vssDealer)
		}
	case "delta-liar":
		out.Corrupt = lastT
		for _, i := range lastT {
			fns[i] = adversary.VSSDeltaLiar(cfgFor(i), vssDealer, e.attackSeed(i))
		}
	case "garbage-verifier":
		// Junk unicast in every ceremony round reads as complaints/noise.
		out.Corrupt = lastT
		for _, i := range lastT {
			fns[i] = adversary.GarbageSpammer(e.attackSeed(i), 3, 24)
		}
	case "crash-verifier":
		out.Corrupt = lastT
		for _, i := range lastT {
			fns[i] = adversary.Crash()
		}
	default:
		return nil, fmt.Errorf("conformance: unknown vss attack %q", sc.Attack)
	}
	if dealerHonest {
		out.Dealt = secrets
	}
	if sc.disturbed(vssDealer) {
		out.DealerDisturbed = true
		out.Dealt = nil // a disturbed dealing pins no canonical secret
	}

	out.Honest = sc.assertable(out.Corrupt)
	results := simnet.Run(e.nw, fns)
	if err := checkHonest(e, results, out.Honest); err != nil {
		return nil, err
	}
	for _, i := range out.Honest {
		p, ok := results[i].Value.(vssPlayer)
		if !ok {
			return nil, e.failf("honest player %d returned %T, want vssPlayer", i, results[i].Value)
		}
		out.Players[i] = p
	}
	return out, nil
}

// Check asserts the paper's VSS properties on the outcome:
//
//  1. Verdict unanimity: all honest players return the same accept/reject
//     decision (Fig. 3's check is over broadcasts, so views agree).
//  2. Exactness: the dealer is rejected iff it cheated — honest dealers are
//     never disqualified, cheating ones always are.
//  3. Reconstruction: when accepted, all honest players reconstruct
//     identical secrets; when the dealer was honest they equal the dealt
//     ones.
func (o *VSSOutcome) Check() error {
	e := o.Env
	ref, refSet := vssPlayer{}, false
	for _, i := range o.Honest {
		p := o.Players[i]
		if !refSet {
			ref, refSet = p, true
			continue
		}
		if p.Verdict != ref.Verdict {
			return e.failf("verdict split: player %d says %v, player %d says %v",
				o.Honest[0], ref.Verdict, i, p.Verdict)
		}
	}
	if !refSet {
		return nil // every honest player disturbed: nothing is assertable
	}
	// Exactness only binds when the dealer itself was undisturbed: a slow
	// dealer is charged as faulty, and either verdict is sound for it.
	if want := !o.DealerCheated; !o.DealerDisturbed && ref.Verdict != want {
		return e.failf("verdict = %v, want %v (dealer cheated: %v)", ref.Verdict, want, o.DealerCheated)
	}
	if !ref.Verdict {
		return nil
	}
	for _, i := range o.Honest {
		p := o.Players[i]
		if len(p.Secrets) != e.sc.M {
			return e.failf("player %d reconstructed %d secrets, want %d", i, len(p.Secrets), e.sc.M)
		}
		for j, v := range p.Secrets {
			if v != ref.Secrets[j] {
				return e.failf("secret %d: player %d got %#x, player %d got %#x",
					j, i, v, o.Honest[0], ref.Secrets[j])
			}
			if o.Dealt != nil && v != o.Dealt[j] {
				return e.failf("secret %d reconstructed as %#x, dealt %#x", j, v, o.Dealt[j])
			}
		}
	}
	return nil
}
