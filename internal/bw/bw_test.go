package bw

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/gf2k"
	"repro/internal/metrics"
	"repro/internal/poly"
)

func setup(t testing.TB, k, n, degree int, seed int64) (gf2k.Field, []gf2k.Element, []gf2k.Element, poly.Poly) {
	t.Helper()
	f := gf2k.MustNew(k)
	rng := rand.New(rand.NewSource(seed))
	p, err := poly.Random(f, degree, gf2k.Element(rng.Uint64())&((1<<k)-1), rng)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]gf2k.Element, n)
	for i := range xs {
		xs[i] = gf2k.Element(i + 1) // player ids 1..n
	}
	ys := poly.EvalMany(f, p, xs)
	return f, xs, ys, p
}

func polyEqual(f gf2k.Field, a, b poly.Poly) bool {
	if a.Degree() != b.Degree() {
		return false
	}
	for i := 0; i <= a.Degree(); i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDecodeNoErrors(t *testing.T) {
	f, xs, ys, p := setup(t, 32, 10, 3, 1)
	res, err := Decode(f, xs, ys, 3, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !polyEqual(f, res.Poly, p) {
		t.Fatalf("decoded %v, want %v", res.Poly, p)
	}
	if len(res.ErrorIndexes) != 0 {
		t.Fatalf("error indexes = %v, want none", res.ErrorIndexes)
	}
}

func TestDecodeWithErrors(t *testing.T) {
	// n = 10, degree = 3 → tolerates e ≤ 3.
	for e := 1; e <= 3; e++ {
		f, xs, ys, p := setup(t, 32, 10, 3, int64(e)*7)
		rng := rand.New(rand.NewSource(int64(e) * 13))
		corrupted := rng.Perm(len(xs))[:e]
		for _, i := range corrupted {
			ys[i] ^= gf2k.Element(rng.Uint32() | 1)
		}
		res, err := Decode(f, xs, ys, 3, 3, nil)
		if err != nil {
			t.Fatalf("e=%d: %v", e, err)
		}
		if !polyEqual(f, res.Poly, p) {
			t.Fatalf("e=%d: wrong polynomial", e)
		}
		if len(res.ErrorIndexes) != e {
			t.Fatalf("e=%d: reported %d errors, want %d", e, len(res.ErrorIndexes), e)
		}
	}
}

func TestDecodeErrorPositionsReported(t *testing.T) {
	f, xs, ys, _ := setup(t, 32, 13, 4, 3)
	ys[2] ^= 5
	ys[9] ^= 9
	res, err := Decode(f, xs, ys, 4, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ErrorIndexes) != 2 || res.ErrorIndexes[0] != 2 || res.ErrorIndexes[1] != 9 {
		t.Fatalf("ErrorIndexes = %v, want [2 9]", res.ErrorIndexes)
	}
}

func TestDecodeTooManyErrors(t *testing.T) {
	// degree 3, n = 10 → bound e = 3; corrupt 4 points randomly. With
	// overwhelming probability there is no degree-3 polynomial within 3
	// errors of the corrupted word (field is large).
	f, xs, ys, _ := setup(t, 32, 10, 3, 5)
	rng := rand.New(rand.NewSource(17))
	for _, i := range rng.Perm(len(xs))[:4] {
		ys[i] ^= gf2k.Element(rng.Uint32() | 1)
	}
	if _, err := Decode(f, xs, ys, 3, 3, nil); !errors.Is(err, ErrNoCodeword) {
		t.Fatalf("err = %v, want ErrNoCodeword", err)
	}
}

func TestDecodeParameterValidation(t *testing.T) {
	f, xs, ys, _ := setup(t, 16, 8, 2, 9)
	if _, err := Decode(f, xs, ys[:5], 2, 2, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Decode(f, xs, ys, -1, 2, nil); err == nil {
		t.Error("negative degree accepted")
	}
	if _, err := Decode(f, xs, ys, 2, -1, nil); err == nil {
		t.Error("negative error bound accepted")
	}
	// Need degree + 2e + 1 = 2 + 6 + 1 = 9 > 8 points.
	if _, err := Decode(f, xs, ys, 2, 3, nil); err == nil {
		t.Error("insufficient points accepted")
	}
}

func TestDecodeZeroErrorBudgetRejectsCorruption(t *testing.T) {
	f, xs, ys, _ := setup(t, 32, 6, 2, 11)
	ys[4] ^= 1
	if _, err := Decode(f, xs, ys, 2, 0, nil); !errors.Is(err, ErrNoCodeword) {
		t.Fatalf("err = %v, want ErrNoCodeword", err)
	}
}

func TestDecodeExactThreshold(t *testing.T) {
	// Exactly n = degree + 2e + 1 points: the paper's Coin-Expose setting
	// (|S| = 3t+1, degree t, e = t).
	for tFaults := 1; tFaults <= 4; tFaults++ {
		n := 3*tFaults + 1
		f, xs, ys, p := setup(t, 32, n, tFaults, int64(tFaults)*23)
		rng := rand.New(rand.NewSource(int64(tFaults) * 29))
		for _, i := range rng.Perm(n)[:tFaults] {
			ys[i] ^= gf2k.Element(rng.Uint32() | 1)
		}
		res, err := Decode(f, xs, ys, tFaults, tFaults, nil)
		if err != nil {
			t.Fatalf("t=%d: %v", tFaults, err)
		}
		if !polyEqual(f, res.Poly, p) {
			t.Fatalf("t=%d: wrong polynomial", tFaults)
		}
	}
}

func TestDecodeRandomizedSweep(t *testing.T) {
	// Property: for random polynomials, random distinct points, and any
	// e ≤ maxErrors corruptions, Decode recovers the original exactly.
	rng := rand.New(rand.NewSource(42))
	f := gf2k.MustNew(24)
	for trial := 0; trial < 200; trial++ {
		degree := rng.Intn(5)
		maxE := rng.Intn(4)
		n := degree + 2*maxE + 1 + rng.Intn(4)
		p, err := poly.Random(f, degree, gf2k.Element(rng.Uint32())&0xffffff, rng)
		if err != nil {
			t.Fatal(err)
		}
		xs := make([]gf2k.Element, n)
		for i := range xs {
			xs[i] = gf2k.Element(i + 1)
		}
		ys := poly.EvalMany(f, p, xs)
		e := 0
		if maxE > 0 {
			e = rng.Intn(maxE + 1)
		}
		for _, i := range rng.Perm(n)[:e] {
			for {
				delta := gf2k.Element(rng.Uint32()) & 0xffffff
				if delta != 0 {
					ys[i] ^= delta
					break
				}
			}
		}
		res, err := Decode(f, xs, ys, degree, maxE, nil)
		if err != nil {
			t.Fatalf("trial %d (deg=%d maxE=%d n=%d e=%d): %v", trial, degree, maxE, n, e, err)
		}
		if !polyEqual(f, res.Poly, p) {
			t.Fatalf("trial %d: wrong polynomial", trial)
		}
		if len(res.ErrorIndexes) != e {
			t.Fatalf("trial %d: reported %d errors, injected %d", trial, len(res.ErrorIndexes), e)
		}
	}
}

func TestDecodeCountsInterpolations(t *testing.T) {
	var c metrics.Counters
	f, xs, ys, _ := setup(t, 32, 10, 3, 1)
	fc := f.WithCounters(&c)
	if _, err := Decode(fc, xs, ys, 3, 3, &c); err != nil {
		t.Fatal(err)
	}
	if got := c.Snapshot().Interpolations; got != 1 {
		t.Errorf("fault-free decode used %d interpolations, want 1", got)
	}
}

func TestPolyDiv(t *testing.T) {
	f := gf2k.MustNew(16)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		a, _ := poly.Random(f, 1+rng.Intn(6), gf2k.Element(rng.Uint32())&0xffff, rng)
		b, _ := poly.Random(f, 1+rng.Intn(3), gf2k.Element(rng.Uint32())&0xffff, rng)
		if b.Degree() < 0 {
			continue
		}
		q, r, err := polyDiv(f, a, b)
		if err != nil {
			t.Fatal(err)
		}
		// a = q*b + r with deg r < deg b.
		recon := poly.Add(f, poly.Mul(f, q, b), r)
		x, _ := f.Rand(rng)
		if poly.Eval(f, recon, x) != poly.Eval(f, a, x) {
			t.Fatal("polyDiv: a != q*b + r")
		}
		if r.Degree() >= b.Degree() {
			t.Fatalf("polyDiv: deg r = %d ≥ deg b = %d", r.Degree(), b.Degree())
		}
	}
	if _, _, err := polyDiv(f, poly.Poly{1}, poly.Poly{}); err == nil {
		t.Error("division by zero polynomial accepted")
	}
}

func TestMatrixSolveSingular(t *testing.T) {
	f := gf2k.MustNew(16)
	// Inconsistent system: x = 1, x = 2.
	m := newMatrix(2, 1)
	m.set(0, 0, 1)
	m.setRHS(0, 1)
	m.set(1, 0, 1)
	m.setRHS(1, 2)
	if _, ok := m.solve(f, nil); ok {
		t.Error("inconsistent system reported solvable")
	}
	// Underdetermined system: free variable gets zero.
	m = newMatrix(1, 2)
	m.set(0, 0, 1)
	m.set(0, 1, 1)
	m.setRHS(0, 7)
	sol, ok := m.solve(f, nil)
	if !ok || sol[0] != 7 || sol[1] != 0 {
		t.Errorf("underdetermined solve = %v ok=%v, want [7 0] true", sol, ok)
	}
}

func BenchmarkDecode(b *testing.B) {
	cases := []struct {
		name      string
		n, deg, e int
		corrupt   int
	}{
		{"n=7_clean", 7, 2, 2, 0},
		{"n=7_faulty", 7, 2, 2, 2},
		{"n=13_clean", 13, 4, 4, 0},
		{"n=13_faulty", 13, 4, 4, 4},
		{"n=25_faulty", 25, 8, 8, 8},
	}
	for _, tc := range cases {
		f, xs, ys, _ := setup(b, 32, tc.n, tc.deg, 1)
		rng := rand.New(rand.NewSource(2))
		for _, i := range rng.Perm(tc.n)[:tc.corrupt] {
			ys[i] ^= gf2k.Element(rng.Uint32() | 1)
		}
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Decode(f, xs, ys, tc.deg, tc.e, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
