package beacon

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/coin"
)

// Store persistence: one file per player, written atomically
// (temp-file + rename), holding that player's coin.Store in the
// length-prefixed Batch wire format. In a real deployment each player
// writes only its own file on its own machine; the simulated cluster
// writes all n side by side. The share bytes are the players' secrets —
// files are created 0600 and the directory 0700.

// storeFile names player i's store file inside dir.
func storeFile(dir string, player int) string {
	return filepath.Join(dir, fmt.Sprintf("player-%03d.store", player))
}

// Persist writes every player's store under dir. Call only after Close
// has returned: the stores must be quiescent. A restarted process resumes
// with LoadStores + Resume, never re-running the trusted dealer.
func (s *Service) Persist(dir string) error {
	if !s.closed.Load() {
		return fmt.Errorf("beacon: persist requires a closed service")
	}
	select {
	case <-s.execDone:
	default:
		return fmt.Errorf("beacon: persist requires a closed service")
	}
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return err
	}
	for i, g := range s.gens {
		enc, err := g.Store().MarshalBinary()
		if err != nil {
			return fmt.Errorf("beacon: marshal player %d store: %w", i, err)
		}
		if err := writeAtomic(storeFile(dir, i), enc); err != nil {
			return fmt.Errorf("beacon: persist player %d store: %w", i, err)
		}
	}
	return nil
}

// LoadStores reads n persisted player stores from dir. It returns
// os.ErrNotExist (wrapped) when no store files are present, so callers can
// distinguish "fresh start" from genuine corruption.
func LoadStores(dir string, n int) ([]*coin.Store, error) {
	stores := make([]*coin.Store, n)
	for i := 0; i < n; i++ {
		data, err := os.ReadFile(storeFile(dir, i))
		if err != nil {
			return nil, fmt.Errorf("beacon: load player %d store: %w", i, err)
		}
		st, err := coin.UnmarshalStore(data)
		if err != nil {
			return nil, fmt.Errorf("beacon: load player %d store: %w", i, err)
		}
		stores[i] = st
	}
	return stores, nil
}

// HaveStores reports whether dir contains a persisted store for player 0
// (and hence, for an uncorrupted state directory, for every player).
func HaveStores(dir string) bool {
	_, err := os.Stat(storeFile(dir, 0))
	return err == nil
}

// writeAtomic writes data to path via a temp file and rename, so a crash
// mid-write never leaves a truncated store behind.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".store-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := tmp.Chmod(0o600); err != nil {
		tmp.Close()
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
