package adversary

import (
	"math/rand"

	"repro/internal/simnet"
)

// Match selects the staged message copies a rule applies to. Zero-valued
// fields match everything, so Match{} covers all traffic.
type Match struct {
	// Senders restricts the rule to messages from these players (any sender
	// when empty). Only messages from corrupted players should normally be
	// matched: intercepting an honest player's traffic models that player
	// being corrupted too, and counts against the fault bound t.
	Senders []int
	// Receivers restricts the rule to copies addressed to these players
	// (any recipient when empty).
	Receivers []int
	// Round restricts the rule to rounds for which the predicate holds
	// (all rounds when nil). Rounds are the network's 0-based staging
	// rounds; see RoundIs and RoundIn for the common predicates.
	Round func(round int) bool
	// Kind restricts the rule to one delivery kind (both when zero).
	Kind simnet.Kind
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func (m Match) covers(d simnet.Deliverable) bool {
	if len(m.Senders) > 0 && !containsInt(m.Senders, d.From) {
		return false
	}
	if len(m.Receivers) > 0 && !containsInt(m.Receivers, d.To) {
		return false
	}
	if m.Round != nil && !m.Round(d.Round) {
		return false
	}
	if m.Kind != 0 && m.Kind != d.Kind {
		return false
	}
	return true
}

// RoundIs returns a predicate matching exactly round r.
func RoundIs(r int) func(int) bool {
	return func(round int) bool { return round == r }
}

// RoundIn returns a predicate matching rounds in [lo, hi] inclusive.
func RoundIn(lo, hi int) func(int) bool {
	return func(round int) bool { return round >= lo && round <= hi }
}

// Effect rewrites one matched message copy. It receives the strategy's
// seeded rng (interception is serialized under the network lock, so
// unguarded use is deterministic) and returns the copies to deliver instead:
// nil drops the copy, several results duplicate it. Effects must not mutate
// d.Payload in place — other copies of the same message share its backing
// array.
type Effect func(rng *rand.Rand, d simnet.Deliverable) []simnet.Deliverable

// Strategy is a composable message-level adversary: an ordered rule list
// binding Effects to the traffic they corrupt. The first matching rule wins;
// unmatched copies pass through unchanged. Build one with NewStrategy and
// chain On calls, then install it on the network WithInterceptor.
type Strategy struct {
	rng   *rand.Rand
	rules []struct {
		m Match
		e Effect
	}
}

// NewStrategy returns an empty strategy whose effects draw randomness from
// the given seed, so a (seed, rule set) pair replays the identical attack.
func NewStrategy(seed int64) *Strategy {
	return &Strategy{rng: rand.New(rand.NewSource(seed))}
}

// On appends a rule applying e to copies covered by m, returning the
// strategy for chaining.
func (s *Strategy) On(m Match, e Effect) *Strategy {
	s.rules = append(s.rules, struct {
		m Match
		e Effect
	}{m, e})
	return s
}

// Intercept implements simnet.Interceptor.
func (s *Strategy) Intercept(d simnet.Deliverable) []simnet.Deliverable {
	for _, r := range s.rules {
		if r.m.covers(d) {
			return r.e(s.rng, d)
		}
	}
	return d.Pass()
}

// Drop returns an effect that discards every matched copy — selective
// delivery when bound to particular receivers, full omission otherwise.
func Drop() Effect {
	return func(rng *rand.Rand, d simnet.Deliverable) []simnet.Deliverable {
		return nil
	}
}

// Tamper returns an effect replacing the payload with f(to, payload). The
// original slice is passed read-only; f receives a private copy it may
// mutate and return. Returning a per-recipient variant is equivocation.
func Tamper(f func(to int, payload []byte) []byte) Effect {
	return func(rng *rand.Rand, d simnet.Deliverable) []simnet.Deliverable {
		cp := append([]byte(nil), d.Payload...)
		d.Payload = f(d.To, cp)
		return d.Pass()
	}
}

// Garble returns an effect replacing the payload with random junk of random
// length up to maxLen — a syntactically hostile tamper.
func Garble(maxLen int) Effect {
	return func(rng *rand.Rand, d simnet.Deliverable) []simnet.Deliverable {
		junk := make([]byte, rng.Intn(maxLen+1))
		rng.Read(junk)
		d.Payload = junk
		return d.Pass()
	}
}

// Duplicate returns an effect delivering the copy `times` times in total.
func Duplicate(times int) Effect {
	return func(rng *rand.Rand, d simnet.Deliverable) []simnet.Deliverable {
		out := make([]simnet.Deliverable, times)
		for i := range out {
			out[i] = d
		}
		return out
	}
}

// Redirect returns an effect misdelivering the copy to player `to` instead
// of its addressee (the sender identity stays authenticated).
func Redirect(to int) Effect {
	return func(rng *rand.Rand, d simnet.Deliverable) []simnet.Deliverable {
		d.To = to
		return d.Pass()
	}
}

// FlipByte returns an effect XORing `mask` into the payload byte at
// `offset` (copies shorter than offset+1 pass unchanged). Because XOR by a
// *constant* is invisible to linear checks over GF(2^k), mask may depend on
// the recipient; see PerRecipientFlip.
func FlipByte(offset int, mask byte) Effect {
	return Tamper(func(to int, p []byte) []byte {
		if offset < len(p) {
			p[offset] ^= mask
		}
		return p
	})
}

// PerRecipientFlip returns an effect XORing a fresh pseudo-random nonzero
// mask into the payload byte at `offset` of every matched copy. A constant
// flip shifts every share by the same field element and a recipient-id flip
// deviates *linearly* in the evaluation point — both survive polynomial
// consistency checks, because the corrupted points still lie on a shifted
// degree-t curve. Independent random masks per copy break that structure
// and are the canonical share-corruption attack.
func PerRecipientFlip(offset int) Effect {
	return func(rng *rand.Rand, d simnet.Deliverable) []simnet.Deliverable {
		cp := append([]byte(nil), d.Payload...)
		if offset < len(cp) {
			cp[offset] ^= byte(1 + rng.Intn(255))
		}
		d.Payload = cp
		return d.Pass()
	}
}
