package adversary

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/simnet"
)

// runWith runs the adversary on node 0 while an honest observer on node 1
// records what it sees for `rounds` rounds.
func runWith(t *testing.T, adv simnet.PlayerFunc, rounds int) [][]simnet.Message {
	t.Helper()
	nw := simnet.New(2, simnet.WithMaxRounds(rounds+5))
	var seen [][]simnet.Message
	fns := []simnet.PlayerFunc{
		adv,
		func(nd *simnet.Node) (interface{}, error) {
			for r := 0; r < rounds; r++ {
				msgs, err := nd.EndRound()
				if err != nil {
					return nil, err
				}
				seen = append(seen, msgs)
			}
			return nil, nil
		},
	}
	results := simnet.Run(nw, fns)
	if results[1].Err != nil {
		t.Fatalf("observer: %v", results[1].Err)
	}
	return seen
}

func TestCrashIsSilent(t *testing.T) {
	seen := runWith(t, Crash(), 3)
	for r, msgs := range seen {
		if len(msgs) != 0 {
			t.Fatalf("round %d: crash sent %d messages", r, len(msgs))
		}
	}
}

func TestCrashAfterParticipatesThenStops(t *testing.T) {
	seen := runWith(t, CrashAfter(2), 4)
	for r, msgs := range seen {
		if len(msgs) != 0 {
			t.Fatalf("round %d: silent participant sent messages", r)
		}
	}
}

func TestSilentForRunsContinuation(t *testing.T) {
	ran := false
	adv := SilentFor(2, func(nd *simnet.Node) (interface{}, error) {
		ran = true
		nd.Send(1, []byte("back"))
		_, err := nd.EndRound()
		return nil, err
	})
	seen := runWith(t, adv, 3)
	if !ran {
		t.Fatal("continuation never ran")
	}
	if len(seen[2]) != 1 || string(seen[2][0].Payload) != "back" {
		t.Fatalf("continuation message not observed: %v", seen[2])
	}
}

func TestSilentForNilContinuation(t *testing.T) {
	runWith(t, SilentFor(2, nil), 3)
}

func TestGarbageSpammerSends(t *testing.T) {
	seen := runWith(t, GarbageSpammer(1, 3, 8), 3)
	total := 0
	for _, msgs := range seen {
		total += len(msgs)
		for _, m := range msgs {
			if len(m.Payload) > 8 {
				t.Fatalf("garbage longer than maxLen: %d", len(m.Payload))
			}
		}
	}
	if total != 3 {
		t.Fatalf("spammer sent %d messages over 3 rounds, want 3", total)
	}
}

func TestReplayerEchoes(t *testing.T) {
	nw := simnet.New(2, simnet.WithMaxRounds(10))
	fns := []simnet.PlayerFunc{
		Replayer(3),
		func(nd *simnet.Node) (interface{}, error) {
			nd.Send(0, []byte("ping"))
			if _, err := nd.EndRound(); err != nil {
				return nil, err
			}
			msgs, err := nd.EndRound()
			if err != nil {
				return nil, err
			}
			if len(msgs) != 1 || string(msgs[0].Payload) != "ping" {
				t.Errorf("replayer did not echo: %v", msgs)
			}
			_, err = nd.EndRound()
			return nil, err
		},
	}
	for i, r := range simnet.Run(nw, fns) {
		if r.Err != nil {
			t.Fatalf("player %d: %v", i, r.Err)
		}
	}
}

// TestSilentSurfacesNetworkError pins that Silent reports the error that
// ended its run — with the node index and round for context, and with the
// underlying network sentinel still matchable via errors.Is — instead of
// masking a possible protocol bug as a clean exit.
func TestSilentSurfacesNetworkError(t *testing.T) {
	nw := simnet.New(1, simnet.WithMaxRounds(5))
	results := simnet.Run(nw, []simnet.PlayerFunc{Silent()})
	err := results[0].Err
	if err == nil {
		t.Fatal("Silent returned nil after the network shut down; the shutdown error was swallowed")
	}
	if !errors.Is(err, simnet.ErrMaxRounds) {
		t.Fatalf("error does not unwrap to the network cause: %v", err)
	}
	for _, want := range []string{"silent player 0", "round"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q lacks node context %q", err, want)
		}
	}
}
