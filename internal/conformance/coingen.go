package conformance

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/coingen"
	"repro/internal/gf2k"
	"repro/internal/simnet"
)

// Coin-Gen round layout from a fresh network (used to bind message-level
// attacks to their phase): round 0 is the Bit-Gen dealing, round 1 the
// challenge expose, round 2 the γ exchange; grade-cast and the leader loop
// follow.
const (
	cgDealRound  = 0
	cgGammaRound = 2
)

// cgAttacker is the corrupted player in every Coin-Gen scenario.
const cgAttacker = 2

// cgPlayer is one honest player's output: the Coin-Gen result plus the
// exposed values of all M generated coins.
type cgPlayer struct {
	Res   *coingen.Result
	Coins []gf2k.Element
}

// CoinGenOutcome is the result of one Coin-Gen conformance scenario.
type CoinGenOutcome struct {
	Env             *env
	Corrupt, Honest []int
	// ExpectExcluded is set when the attack must get the attacker expelled
	// from the agreed clique.
	ExpectExcluded bool
	// Players[i] is honest player i's output.
	Players map[int]cgPlayer
}

// RunCoinGen executes one Coin-Gen conformance scenario: every player runs
// Fig. 5 end to end and then exposes all M fresh coins (Fig. 6), so the
// suite can assert unanimity of the *opened* values, not just of the sealed
// batches.
func RunCoinGen(sc Scenario) (*CoinGenOutcome, error) {
	out := &CoinGenOutcome{Players: map[int]cgPlayer{}}

	var ic simnet.Interceptor
	switch sc.Attack {
	case "honest", "crash", "silent", "wrong-degree-dealer", "coin-share-liar":
	case "deal-corrupt":
		// The attacker's code is honest; the message layer hands every
		// recipient a randomly perturbed share vector, so its dealing is
		// inconsistent and the consistency graph must expel it.
		out.Corrupt, out.ExpectExcluded = []int{cgAttacker}, true
		ic = adversary.DealCorruptor(cgAttacker, cgDealRound)
	case "gamma-equivocate":
		// Each recipient sees a different coordinate of the attacker's γ
		// vector perturbed; the clique machinery must still converge.
		out.Corrupt = []int{cgAttacker}
		ic = adversary.GammaEquivocator(gf2k.MustNew(32), cgAttacker, cgGammaRound)
	default:
		return nil, fmt.Errorf("conformance: unknown coingen attack %q", sc.Attack)
	}

	// 8 seed coins: 1 challenge + up to 7 leader attempts.
	e, err := newEnv(sc, ic, 8)
	if err != nil {
		return nil, err
	}
	out.Env = e

	pools := sc.pools()
	cfgFor := func(i int) coingen.Config {
		return coingen.Config{Field: e.field, N: sc.N, T: sc.T, M: sc.M, Seed: e.seeds[i], Pool: pools[i]}
	}
	honest := func(i int) simnet.PlayerFunc {
		return func(nd *simnet.Node) (interface{}, error) {
			res, err := coingen.Run(nd, cfgFor(nd.Index()), e.playerRand(nd.Index()))
			if err != nil {
				return nil, err
			}
			p := cgPlayer{Res: res}
			for res.Batch.Remaining() > 0 {
				c, err := res.Batch.Expose(nd)
				if err != nil {
					return nil, err
				}
				p.Coins = append(p.Coins, c)
			}
			return p, nil
		}
	}
	fns := make([]simnet.PlayerFunc, sc.N)
	for i := range fns {
		fns[i] = honest(i)
	}
	switch sc.Attack {
	case "crash":
		out.Corrupt, out.ExpectExcluded = []int{cgAttacker}, true
		fns[cgAttacker] = adversary.Crash()
	case "silent":
		out.Corrupt, out.ExpectExcluded = []int{cgAttacker}, true
		fns[cgAttacker] = adversary.SilentFor(1024, nil)
	case "wrong-degree-dealer":
		out.Corrupt, out.ExpectExcluded = []int{cgAttacker}, true
		fns[cgAttacker] = adversary.CoinGenWrongDegreeDealer(
			e.field, sc.N, sc.T, sc.M, e.seeds[cgAttacker], e.attackSeed(cgAttacker))
	case "coin-share-liar":
		// Honest code over a corrupted seed batch: every sealed-coin share
		// the attacker transmits during exposure rounds is wrong, and the
		// Berlekamp–Welch budget must absorb it without perturbing the
		// challenge or any leader draw.
		out.Corrupt = []int{cgAttacker}
		liar := e.seeds[cgAttacker]
		for h := range liar.Shares {
			liar.Shares[h] = e.field.Add(liar.Shares[h], 1)
		}
		fns[cgAttacker] = honest(cgAttacker)
	}

	out.Honest = sc.assertable(out.Corrupt)
	results := simnet.Run(e.nw, fns)
	if err := checkHonest(e, results, out.Honest); err != nil {
		return nil, err
	}
	for _, i := range out.Honest {
		p, ok := results[i].Value.(cgPlayer)
		if !ok {
			return nil, e.failf("honest player %d returned %T, want cgPlayer", i, results[i].Value)
		}
		out.Players[i] = p
	}
	return out, nil
}

// Check asserts the paper's Coin-Gen properties:
//
//  1. Clique agreement: all honest players output the identical clique, of
//     size ≥ n−2t; attacks that make the attacker's dealing invalid get it
//     expelled at every honest player.
//  2. Structural agreement: same attempt count and seed consumption.
//  3. Coin unanimity: all M opened coins are identical across honest
//     players (the sealed batches describe one polynomial per coin).
func (o *CoinGenOutcome) Check() error {
	e := o.Env
	if len(o.Honest) == 0 {
		return nil // every honest player disturbed: nothing is assertable
	}
	ref := o.Players[o.Honest[0]]
	if len(ref.Coins) != e.sc.M {
		return e.failf("player %d opened %d coins, want %d", o.Honest[0], len(ref.Coins), e.sc.M)
	}
	if len(ref.Res.Clique) < e.sc.N-2*e.sc.T {
		return e.failf("clique size %d < n−2t = %d", len(ref.Res.Clique), e.sc.N-2*e.sc.T)
	}
	for _, i := range o.Honest {
		p := o.Players[i]
		if len(p.Res.Clique) != len(ref.Res.Clique) {
			return e.failf("clique size differs: player %d has %d, player %d has %d",
				i, len(p.Res.Clique), o.Honest[0], len(ref.Res.Clique))
		}
		for c := range ref.Res.Clique {
			if p.Res.Clique[c] != ref.Res.Clique[c] {
				return e.failf("clique differs at player %d: %v vs %v", i, p.Res.Clique, ref.Res.Clique)
			}
		}
		if o.ExpectExcluded {
			for _, member := range p.Res.Clique {
				if member == cgAttacker {
					return e.failf("player %d kept cheating dealer %d in the clique", i, cgAttacker)
				}
			}
		}
		if p.Res.Attempts != ref.Res.Attempts || p.Res.SeedConsumed != ref.Res.SeedConsumed {
			return e.failf("player %d structure (attempts %d, seed %d) != player %d (attempts %d, seed %d)",
				i, p.Res.Attempts, p.Res.SeedConsumed, o.Honest[0], ref.Res.Attempts, ref.Res.SeedConsumed)
		}
		for h := range ref.Coins {
			if p.Coins[h] != ref.Coins[h] {
				return e.failf("coin %d: player %d opened %#x, player %d opened %#x",
					h, i, p.Coins[h], o.Honest[0], ref.Coins[h])
			}
		}
	}
	return nil
}
