package poly

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/gf2k"
	"repro/internal/metrics"
)

func distinctPoints(f gf2k.Field, n int, rng *rand.Rand) []gf2k.Element {
	seen := make(map[gf2k.Element]bool, n)
	out := make([]gf2k.Element, 0, n)
	for len(out) < n {
		e, err := f.Rand(rng)
		if err != nil {
			panic(err)
		}
		if e == 0 || seen[e] {
			continue
		}
		seen[e] = true
		out = append(out, e)
	}
	return out
}

func TestDegree(t *testing.T) {
	tests := []struct {
		p    Poly
		want int
	}{
		{nil, -1},
		{Poly{0}, -1},
		{Poly{5}, 0},
		{Poly{0, 0, 3}, 2},
		{Poly{1, 2, 0, 0}, 1},
	}
	for _, tt := range tests {
		if got := tt.p.Degree(); got != tt.want {
			t.Errorf("Degree(%v) = %d, want %d", tt.p, got, tt.want)
		}
	}
}

func TestEvalHorner(t *testing.T) {
	f := gf2k.MustNew(8)
	// p(x) = x^2 + 3x + 7 over GF(2^8).
	p := Poly{7, 3, 1}
	for _, x := range []gf2k.Element{0, 1, 2, 5, 200} {
		want := f.Add(f.Add(f.Mul(x, x), f.Mul(3, x)), 7)
		if got := Eval(f, p, x); got != want {
			t.Errorf("Eval(p, %d) = %d, want %d", x, got, want)
		}
	}
	if Eval(f, nil, 42) != 0 {
		t.Error("Eval of empty polynomial should be 0")
	}
}

func TestRandomSecretAndDegree(t *testing.T) {
	f := gf2k.MustNew(32)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		secret, _ := f.Rand(rng)
		p, err := Random(f, 5, secret, rng)
		if err != nil {
			t.Fatal(err)
		}
		if p[0] != secret {
			t.Fatalf("Random: p(0) = %#x, want secret %#x", p[0], secret)
		}
		if p.Degree() > 5 {
			t.Fatalf("Random: degree %d > 5", p.Degree())
		}
		if len(p) != 6 {
			t.Fatalf("Random: len %d, want 6", len(p))
		}
	}
	if _, err := Random(f, -1, 0, rng); err == nil {
		t.Error("Random with negative degree accepted")
	}
}

func TestInterpolateRoundTrip(t *testing.T) {
	for _, k := range []int{8, 16, 32, 64} {
		f := gf2k.MustNew(k)
		rng := rand.New(rand.NewSource(int64(k)))
		for deg := 0; deg <= 8; deg++ {
			secret, _ := f.Rand(rng)
			p, err := Random(f, deg, secret, rng)
			if err != nil {
				t.Fatal(err)
			}
			xs := distinctPoints(f, deg+1, rng)
			ys := EvalMany(f, p, xs)
			q, err := Interpolate(f, xs, ys, nil)
			if err != nil {
				t.Fatalf("GF(2^%d) deg %d: %v", k, deg, err)
			}
			// Same polynomial: agree on fresh points and at zero.
			if Eval(f, q, 0) != secret {
				t.Fatalf("GF(2^%d) deg %d: recovered secret %#x, want %#x", k, deg, Eval(f, q, 0), secret)
			}
			for _, x := range distinctPoints(f, 4, rng) {
				if Eval(f, q, x) != Eval(f, p, x) {
					t.Fatalf("GF(2^%d) deg %d: interpolant disagrees at %#x", k, deg, x)
				}
			}
		}
	}
}

func TestInterpolateAt0MatchesInterpolate(t *testing.T) {
	f := gf2k.MustNew(32)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		deg := rng.Intn(7)
		p, err := Random(f, deg, gf2k.Element(rng.Uint64())&0xffffffff, rng)
		if err != nil {
			t.Fatal(err)
		}
		xs := distinctPoints(f, deg+1, rng)
		ys := EvalMany(f, p, xs)
		v, err := InterpolateAt0(f, xs, ys, nil)
		if err != nil {
			t.Fatal(err)
		}
		if v != p[0] {
			t.Fatalf("InterpolateAt0 = %#x, want %#x", v, p[0])
		}
	}
}

func TestInterpolateErrors(t *testing.T) {
	f := gf2k.MustNew(8)
	if _, err := Interpolate(f, []gf2k.Element{1, 1}, []gf2k.Element{2, 3}, nil); !errors.Is(err, ErrDuplicatePoint) {
		t.Errorf("duplicate xs: err = %v, want ErrDuplicatePoint", err)
	}
	if _, err := Interpolate(f, []gf2k.Element{1}, []gf2k.Element{2, 3}, nil); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := InterpolateAt0(f, []gf2k.Element{1, 1}, []gf2k.Element{2, 3}, nil); !errors.Is(err, ErrDuplicatePoint) {
		t.Error("InterpolateAt0 duplicate xs accepted")
	}
	if _, err := InterpolateAt0(f, nil, nil, nil); err == nil {
		t.Error("InterpolateAt0 with no points accepted")
	}
	if p, err := Interpolate(f, nil, nil, nil); err != nil || p.Degree() != -1 {
		t.Error("empty interpolation should give zero polynomial")
	}
}

func TestInterpolationCounterRecorded(t *testing.T) {
	var c metrics.Counters
	f := gf2k.MustNew(16).WithCounters(&c)
	xs := []gf2k.Element{1, 2, 3}
	ys := []gf2k.Element{4, 5, 6}
	if _, err := Interpolate(f, xs, ys, &c); err != nil {
		t.Fatal(err)
	}
	if _, err := InterpolateAt0(f, xs, ys, &c); err != nil {
		t.Fatal(err)
	}
	if got := c.Snapshot().Interpolations; got != 2 {
		t.Errorf("interpolations counted = %d, want 2", got)
	}
}

func TestAddScalarMul(t *testing.T) {
	f := gf2k.MustNew(16)
	p := Poly{1, 2, 3}
	q := Poly{4, 5}
	sum := Add(f, p, q)
	want := Poly{5, 7, 3}
	for i := range want {
		if sum[i] != want[i] {
			t.Fatalf("Add = %v, want %v", sum, want)
		}
	}
	sp := ScalarMul(f, 2, p)
	for i := range p {
		if sp[i] != f.Mul(2, p[i]) {
			t.Fatalf("ScalarMul wrong at %d", i)
		}
	}
}

func TestMul(t *testing.T) {
	f := gf2k.MustNew(16)
	// (x+1)(x+1) = x^2+1 in characteristic 2.
	got := Mul(f, Poly{1, 1}, Poly{1, 1})
	want := Poly{1, 0, 1}
	if len(got) != len(want) {
		t.Fatalf("Mul len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Mul = %v, want %v", got, want)
		}
	}
	if Mul(f, Poly{}, Poly{1}).Degree() != -1 {
		t.Error("Mul by zero polynomial should be zero")
	}
}

func TestMulEvalHomomorphism(t *testing.T) {
	f := gf2k.MustNew(32)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		p, _ := Random(f, rng.Intn(5), gf2k.Element(rng.Uint32()), rng)
		q, _ := Random(f, rng.Intn(5), gf2k.Element(rng.Uint32()), rng)
		x, _ := f.Rand(rng)
		if Eval(f, Mul(f, p, q), x) != f.Mul(Eval(f, p, x), Eval(f, q, x)) {
			t.Fatal("(p*q)(x) != p(x)*q(x)")
		}
	}
}

func TestFitsDegree(t *testing.T) {
	f := gf2k.MustNew(32)
	rng := rand.New(rand.NewSource(4))
	p, err := Random(f, 3, 77, rng)
	if err != nil {
		t.Fatal(err)
	}
	xs := distinctPoints(f, 10, rng)
	ys := EvalMany(f, p, xs)

	ok, err := FitsDegree(f, xs, ys, 3, nil)
	if err != nil || !ok {
		t.Fatalf("degree-3 points rejected at maxDeg 3: ok=%v err=%v", ok, err)
	}
	ok, err = FitsDegree(f, xs, ys, 2, nil)
	if err != nil || ok {
		t.Fatalf("degree-3 points accepted at maxDeg 2")
	}
	// Corrupt one evaluation: must be rejected.
	ys[7] ^= 1
	ok, err = FitsDegree(f, xs, ys, 3, nil)
	if err != nil || ok {
		t.Fatal("corrupted point accepted")
	}
	// Fewer points than maxDeg+1 always fit.
	ok, err = FitsDegree(f, xs[:2], ys[:2], 3, nil)
	if err != nil || !ok {
		t.Fatal("underdetermined points should fit")
	}
}

func TestClone(t *testing.T) {
	p := Poly{1, 2, 3}
	q := p.Clone()
	q[0] = 9
	if p[0] != 1 {
		t.Error("Clone aliases original")
	}
}

func BenchmarkInterpolate(b *testing.B) {
	f := gf2k.MustNew(32)
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{4, 8, 16, 32} {
		p, _ := Random(f, n-1, 42, rng)
		xs := distinctPoints(f, n, rng)
		ys := EvalMany(f, p, xs)
		b.Run(benchSize(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Interpolate(f, xs, ys, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkInterpolateAt0(b *testing.B) {
	f := gf2k.MustNew(32)
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{4, 8, 16, 32} {
		p, _ := Random(f, n-1, 42, rng)
		xs := distinctPoints(f, n, rng)
		ys := EvalMany(f, p, xs)
		b.Run(benchSize(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := InterpolateAt0(f, xs, ys, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchSize(n int) string {
	return "n=" + string(rune('0'+n/10)) + string(rune('0'+n%10))
}
