package multicell

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkMultiCellLoad is the cluster load benchmark: C concurrent
// clients (half tenant-keyed, half anonymous) hammer an M-cell cluster
// with single-coin draws, and the benchmark reports aggregate draws/s and
// the p99 draw latency under that load. The M∈{1,2,4,8} sweep is the
// scaling story — cells share no protocol state, so on a machine with
// spare cores aggregate throughput grows with M (the CI loadtest lane
// gates cells=4 ≥ 2.5× cells=1 on 4-vCPU runners; a 1-CPU box will
// honestly report ~flat scaling).
//
// ErrSaturated/ErrRateLimited never appear here (no tenant rate is set and
// queues are deep), so every iteration is a served draw; shed routing may
// engage when a cell's refill lags, which is part of what's being measured.
func BenchmarkMultiCellLoad(b *testing.B) {
	for _, m := range []int{1, 2, 4, 8} {
		for _, clients := range []int{16} {
			b.Run(benchName(m, clients), func(b *testing.B) {
				benchLoad(b, m, clients)
			})
		}
	}
}

func benchName(m, clients int) string {
	return "cells=" + itoa(m) + "/clients=" + itoa(clients)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func benchLoad(b *testing.B, cells, clients int) {
	cfg := testClusterConfig(b, cells)
	cl, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer mustCloseCluster(b, cl)
	ctx := context.Background()

	tenants := make([]string, clients)
	for i := range tenants {
		if i%2 == 0 {
			tenants[i] = "tenant-" + itoa(i) // hash-routed half
		} // odd clients stay anonymous → round-robin half
	}

	var next atomic.Int64
	lats := make([][]time.Duration, clients)
	var wg sync.WaitGroup
	b.ResetTimer()
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lat := make([]time.Duration, 0, b.N/clients+1)
			for next.Add(1) <= int64(b.N) {
				t0 := time.Now()
				if _, err := cl.Draw(ctx, tenants[c]); err != nil {
					b.Error(err)
					return
				}
				lat = append(lat, time.Since(t0))
			}
			lats[c] = lat
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		b.Fatal("no draws completed")
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	b.ReportMetric(float64(len(all))/elapsed.Seconds(), "draws/s")
	b.ReportMetric(float64(all[len(all)*99/100].Nanoseconds()), "p99-ns")
	var shed int64
	for _, st := range cl.CellStats() {
		shed += st.RoutedShed
	}
	b.ReportMetric(float64(shed), "shed")
}
