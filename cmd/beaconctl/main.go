// Command beaconctl is the cluster inspector for a multi-process beacon:
// it reads the same peers.yaml the daemons run from, scrapes every
// daemon's observability endpoints (/v1/healthz, /metrics, /debug/trace —
// the http: field of each roster entry), and renders the operator's view
// of the whole cluster from the outside.
//
//	beaconctl status   -config peers.yaml [-lag 3]
//	beaconctl timeline -config peers.yaml [-n 5000] [-o merged.jsonl]
//	beaconctl cells    -gw host:8544 [-interval 1s]
//
// cells inspects a multi-cell gateway (cmd/beacongw) instead of a daemon
// roster: it scrapes the gateway's /metrics twice, -interval apart, and
// prints one row per cell — store depth, refill lag below the high-water
// mark, queued draws, whether a pipelined Coin-Gen is in flight, routed
// draws/sec over the sampling window (from the multicell_routed_draws_total
// deltas), draws shed away from the cell, and its down flag. The footer
// sums cluster throughput and reports live streams and router rejections.
//
// status prints one row per player: its round/log/epoch position, the
// committee generation it serves (GEN — bumped by every dealer-free
// reshare), coins left in the store, how far it trails the cluster lead
// (LAG), its view of peer connectivity, and latency quantiles (draw
// latency in -all mode, emit latency in -player mode). Players lagging the
// lead by more than -lag rounds are flagged STRAGGLER; unreachable daemons
// are flagged DOWN; daemons armed for a handover are flagged
// reshare-arming while the cutover is negotiated and reshare@N once it is
// committed. A daemon that was SIGKILLed shows DOWN until it restarts,
// STRAGGLER while it catches up, and a clean row once rejoined.
//
// timeline fetches every daemon's in-memory flight recorder
// (/debug/trace), merges the per-daemon streams into one canonically
// ordered cluster timeline (obs.MergeJSONL — ordered by epoch, round,
// player), and renders it with obs.Timeline; -o writes the merged JSONL
// instead, for offline analysis.
//
// beaconctl never speaks the authenticated peer transport and needs no
// secret material beyond read access to peers.yaml; it is safe to run from
// any operator machine that can reach the daemons' HTTP ports.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/prom"
	"repro/internal/simnet"
)

const usage = `beaconctl: inspect a multi-process beacon cluster over its observability endpoints

usage:
  beaconctl status   -config peers.yaml [-lag 3] [-timeout 2s]
  beaconctl timeline -config peers.yaml [-n 5000] [-o merged.jsonl] [-timeout 2s]
  beaconctl cells    -gw host:8544 [-interval 1s] [-timeout 2s]

the peers.yaml roster needs an http: field per peer (the daemon's -addr);
cells talks to a beacongw gateway instead and needs only its /metrics port.`

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("beaconctl: no subcommand\n%s", usage)
	}
	switch args[0] {
	case "status":
		return runStatus(args[1:], stdout, stderr)
	case "timeline":
		return runTimeline(args[1:], stdout, stderr)
	case "cells":
		return runCells(args[1:], stdout, stderr)
	case "help", "-h", "-help", "--help":
		fmt.Fprintln(stdout, usage)
		return nil
	default:
		return fmt.Errorf("beaconctl: unknown subcommand %q\n%s", args[0], usage)
	}
}

// peerView is everything status learned about one daemon.
type peerView struct {
	id   int
	http string
	err  error // unreachable / malformed answer

	// From /v1/healthz.
	joined     bool
	refilling  bool
	round      int
	logLen     int
	epoch      int
	generation int
	remaining  int
	peersUp    int
	peersAll   int
	armed      bool // holds a next-generation roster (reshare pending)
	cutover    int  // committed handover position, -1 while negotiating/unarmed

	// From /metrics.
	p50, p99   float64 // draw (service) or emit (player) latency seconds
	latencySrc string  // "draw" or "emit"
	demotions  float64 // sum over this daemon's simnet_peer_demotions_total
	reconnects float64 // sum over simnet_peer_reconnects_total
}

func runStatus(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("beaconctl status", flag.ContinueOnError)
	fs.SetOutput(stderr)
	configPath := fs.String("config", "", "peers.yaml with http: addresses")
	lagLimit := fs.Int("lag", 3, "flag a player STRAGGLER when it trails the cluster lead by more than this many rounds")
	timeout := fs.Duration("timeout", 2*time.Second, "per-daemon scrape timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pc, err := loadRoster(*configPath)
	if err != nil {
		return err
	}

	client := &http.Client{Timeout: *timeout}
	views := make([]*peerView, 0, pc.N())
	for _, p := range pc.Peers {
		views = append(views, scrapePeer(client, p))
	}

	// The cluster lead is the most advanced reachable player; lag is
	// measured against it, matching the transport's own watermark-lag
	// definition (everything is relative to the furthest committer).
	lead := -1
	for _, v := range views {
		if v.err == nil && v.round > lead {
			lead = v.round
		}
	}

	tw := tabwriter.NewWriter(stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "PLAYER\tHTTP\tROUND\tLOG\tEPOCH\tGEN\tSTORE\tLAG\tPEERS\tLATENCY(p50/p99)\tFLAGS")
	stragglers := 0
	for _, v := range views {
		if v.err != nil {
			fmt.Fprintf(tw, "%d\t%s\t-\t-\t-\t-\t-\t-\t-\t-\tDOWN (%v)\n", v.id, orDash(v.http), v.err)
			stragglers++
			continue
		}
		lag := lead - v.round
		if lag < 0 {
			lag = 0
		}
		var flags []string
		if lag > *lagLimit {
			flags = append(flags, "STRAGGLER")
			stragglers++
		}
		if !v.joined {
			flags = append(flags, "joining")
		}
		if v.refilling {
			flags = append(flags, "refilling")
		}
		if v.armed {
			// A dealer-free handover is pending: the daemon pauses (and
			// exits for the ceremony) once its log reaches the cutover.
			if v.cutover >= 0 {
				flags = append(flags, fmt.Sprintf("reshare@%d", v.cutover))
			} else {
				flags = append(flags, "reshare-arming")
			}
		}
		if v.demotions > 0 {
			flags = append(flags, fmt.Sprintf("demoted-peers=%.0f", v.demotions))
		}
		lat := "-"
		if v.latencySrc != "" {
			lat = fmt.Sprintf("%s %.0fms/%.0fms", v.latencySrc, v.p50*1000, v.p99*1000)
		}
		fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d/%d\t%s\t%s\n",
			v.id, v.http, v.round, v.logLen, v.epoch, v.generation, v.remaining, lag,
			v.peersUp, v.peersAll, lat, strings.Join(flags, ","))
	}
	tw.Flush()
	if lead < 0 {
		fmt.Fprintln(stdout, "cluster: no daemon reachable")
	} else {
		fmt.Fprintf(stdout, "cluster: lead round %d, %d/%d players healthy\n",
			lead, len(views)-stragglers, len(views))
	}
	return nil
}

// scrapePeer collects one daemon's healthz and metrics; a partial answer
// (healthz up, metrics down) keeps the healthz half rather than erroring.
func scrapePeer(client *http.Client, p simnet.Peer) *peerView {
	v := &peerView{id: p.ID, http: p.HTTP}
	if p.HTTP == "" {
		v.err = fmt.Errorf("no http: address in peers.yaml")
		return v
	}
	base := "http://" + p.HTTP

	resp, err := client.Get(base + "/v1/healthz")
	if err != nil {
		v.err = err
		return v
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		v.err = fmt.Errorf("healthz status %d", resp.StatusCode)
		return v
	}
	var hz struct {
		Joined     bool   `json:"joined"`
		Refilling  bool   `json:"refilling"`
		Round      int    `json:"round"`
		Log        int    `json:"log"`
		Epoch      int    `json:"epoch"`
		Generation int    `json:"generation"`
		Remaining  int    `json:"remaining"`
		Peers      []bool `json:"peers"`
		Armed      bool   `json:"armed"`
		Cutover    *int   `json:"cutover"` // absent on pre-reshare daemons → unarmed
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		v.err = fmt.Errorf("healthz: %v", err)
		return v
	}
	v.joined, v.refilling = hz.Joined, hz.Refilling
	v.round, v.logLen, v.epoch, v.remaining = hz.Round, hz.Log, hz.Epoch, hz.Remaining
	v.generation, v.armed = hz.Generation, hz.Armed
	v.cutover = -1
	if hz.Cutover != nil {
		v.cutover = *hz.Cutover
	}
	v.peersAll = len(hz.Peers)
	for _, up := range hz.Peers {
		if up {
			v.peersUp++
		}
	}

	mresp, err := client.Get(base + "/metrics")
	if err != nil {
		return v // healthz answered; metrics are best-effort
	}
	defer mresp.Body.Close()
	samples, err := prom.ParseText(mresp.Body)
	if err != nil {
		return v
	}
	for _, src := range []struct{ label, name string }{
		{"draw", "beacon_draw_latency_seconds"},
		{"emit", "beacond_emit_latency_seconds"},
	} {
		if n, ok := prom.Value(samples, src.name+"_count"); ok && n > 0 {
			v.latencySrc = src.label
			v.p50 = prom.Quantile(samples, src.name, 0.50)
			v.p99 = prom.Quantile(samples, src.name, 0.99)
			break
		}
	}
	for _, s := range prom.Find(samples, "simnet_peer_demotions_total") {
		v.demotions += s.Value
	}
	for _, s := range prom.Find(samples, "simnet_peer_reconnects_total") {
		v.reconnects += s.Value
	}
	return v
}

func runTimeline(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("beaconctl timeline", flag.ContinueOnError)
	fs.SetOutput(stderr)
	configPath := fs.String("config", "", "peers.yaml with http: addresses")
	events := fs.Int("n", 0, "events to fetch per daemon (0 = all retained)")
	out := fs.String("o", "", "write merged JSONL to this file instead of rendering the timeline")
	timeout := fs.Duration("timeout", 5*time.Second, "per-daemon fetch timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pc, err := loadRoster(*configPath)
	if err != nil {
		return err
	}

	client := &http.Client{Timeout: *timeout}
	streams := map[int]io.Reader{}
	fetched := 0
	for _, p := range pc.Peers {
		if p.HTTP == "" {
			fmt.Fprintf(stderr, "beaconctl: player %d has no http: address; skipping\n", p.ID)
			continue
		}
		url := fmt.Sprintf("http://%s/debug/trace", p.HTTP)
		if *events > 0 {
			url += fmt.Sprintf("?n=%d", *events)
		}
		resp, err := client.Get(url)
		if err != nil {
			fmt.Fprintf(stderr, "beaconctl: player %d unreachable (%v); merging without it\n", p.ID, err)
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			fmt.Fprintf(stderr, "beaconctl: player %d trace fetch failed (status %d, %v); merging without it\n",
				p.ID, resp.StatusCode, err)
			continue
		}
		streams[p.ID] = strings.NewReader(string(body))
		fetched++
	}
	if fetched == 0 {
		return fmt.Errorf("beaconctl: no daemon served a trace")
	}
	merged, err := obs.MergeJSONL(streams)
	if err != nil {
		return err
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		j := obs.NewJSONL(f)
		for _, e := range merged {
			j.Emit(e)
		}
		if err := j.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "beaconctl: merged %d events from %d daemons into %s\n", len(merged), fetched, *out)
		return nil
	}
	fmt.Fprintf(stdout, "cluster timeline: %d events from %d daemons\n", len(merged), fetched)
	obs.Timeline(stdout, merged)
	return nil
}

// cellView is everything cells learned about one gateway cell from the
// two /metrics snapshots.
type cellView struct {
	depth, lag, queue float64
	refilling, down   bool
	routed            float64 // draws served over the window, all routes
	shedAway          float64 // draws this cell was primary for but lost, over the window
}

// runCells renders the per-cell table of a beacongw gateway from two
// /metrics scrapes taken -interval apart: gauges (depth, lag, queue,
// refill, down) come from the second snapshot, rates (DRAWS/S, SHED/S)
// from the counter deltas over the window.
func runCells(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("beaconctl cells", flag.ContinueOnError)
	fs.SetOutput(stderr)
	gw := fs.String("gw", "", "beacongw address (host:port of its -addr)")
	interval := fs.Duration("interval", time.Second, "sampling window between the two /metrics scrapes")
	timeout := fs.Duration("timeout", 2*time.Second, "per-scrape timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *gw == "" {
		return fmt.Errorf("beaconctl: cells requires -gw host:port\n%s", usage)
	}
	client := &http.Client{Timeout: *timeout}
	first, err := scrapeGateway(client, *gw)
	if err != nil {
		return fmt.Errorf("beaconctl: gateway %s: %w", *gw, err)
	}
	time.Sleep(*interval)
	second, err := scrapeGateway(client, *gw)
	if err != nil {
		return fmt.Errorf("beaconctl: gateway %s: %w", *gw, err)
	}
	return renderCells(stdout, first, second, *interval)
}

// scrapeGateway fetches and parses one /metrics exposition.
func scrapeGateway(client *http.Client, gw string) ([]prom.Sample, error) {
	resp, err := client.Get("http://" + gw + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics status %d", resp.StatusCode)
	}
	return prom.ParseText(resp.Body)
}

// renderCells turns the two snapshots into the operator table.
func renderCells(stdout io.Writer, first, second []prom.Sample, window time.Duration) error {
	cells := map[string]*cellView{}
	view := func(id string) *cellView {
		if cells[id] == nil {
			cells[id] = &cellView{}
		}
		return cells[id]
	}
	for _, s := range prom.Find(second, "beacon_cell_depth") {
		view(s.Label("cell")).depth = s.Value
	}
	for _, s := range prom.Find(second, "beacon_cell_refill_lag") {
		view(s.Label("cell")).lag = s.Value
	}
	for _, s := range prom.Find(second, "beacon_cell_queue_depth") {
		view(s.Label("cell")).queue = s.Value
	}
	for _, s := range prom.Find(second, "beacon_cell_refill_in_flight") {
		view(s.Label("cell")).refilling = s.Value > 0
	}
	for _, s := range prom.Find(second, "beacon_cell_down") {
		view(s.Label("cell")).down = s.Value > 0
	}
	// Counter deltas over the window. Counters are monotonic, so a missing
	// first-snapshot sample (cell served nothing yet) reads as 0.
	counterAt := func(samples []prom.Sample, name string) map[string]float64 {
		out := map[string]float64{}
		for _, s := range prom.Find(samples, name) {
			out[s.Label("cell")] += s.Value // sums routed_draws over its route label
		}
		return out
	}
	for name, into := range map[string]func(*cellView, float64){
		"multicell_routed_draws_total": func(v *cellView, d float64) { v.routed = d },
		"multicell_shed_total":         func(v *cellView, d float64) { v.shedAway = d },
	} {
		before, after := counterAt(first, name), counterAt(second, name)
		for id, a := range after {
			into(view(id), a-before[id])
		}
	}
	if len(cells) == 0 {
		return fmt.Errorf("beaconctl: no beacon_cell_* series in the exposition — is -gw pointing at a beacongw /metrics port?")
	}

	ids := make([]string, 0, len(cells))
	for id := range cells {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, aerr := strconv.Atoi(ids[i])
		b, berr := strconv.Atoi(ids[j])
		if aerr != nil || berr != nil {
			return ids[i] < ids[j]
		}
		return a < b
	})
	secs := window.Seconds()
	tw := tabwriter.NewWriter(stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "CELL\tDEPTH\tLAG\tQUEUE\tREFILL\tDRAWS/S\tSHED/S\tFLAGS")
	var totalRate float64
	for _, id := range ids {
		v := cells[id]
		rate := v.routed / secs
		totalRate += rate
		refill := "-"
		if v.refilling {
			refill = "yes"
		}
		flags := ""
		if v.down {
			flags = "DOWN"
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.0f\t%s\t%.1f\t%.1f\t%s\n",
			id, v.depth, v.lag, v.queue, refill, rate, v.shedAway/secs, flags)
	}
	tw.Flush()
	streams, _ := prom.Value(second, "multicell_streams_active")
	var rejected float64
	for _, s := range prom.Find(second, "multicell_rejected_total") {
		rejected += s.Value
	}
	fmt.Fprintf(stdout, "cluster: %.1f draws/s across %d cells, %.0f live streams, %.0f draws rejected since start\n",
		totalRate, len(cells), streams, rejected)
	return nil
}

// loadRoster loads peers.yaml and sorts the roster by id (Validate already
// does; the sort keeps the table stable if that ever changes).
func loadRoster(path string) (*simnet.PeerConfig, error) {
	if path == "" {
		return nil, fmt.Errorf("beaconctl: -config peers.yaml is required\n%s", usage)
	}
	pc, err := simnet.LoadPeerConfig(path)
	if err != nil {
		return nil, err
	}
	sort.Slice(pc.Peers, func(i, j int) bool { return pc.Peers[i].ID < pc.Peers[j].ID })
	return pc, nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
