package beacon

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/simnet"
)

// testPeerConfig builds an n-player loopback cluster config with freshly
// reserved ports. The reserve-then-close trick leaves a tiny race window,
// which is fine for tests.
func testPeerConfig(t *testing.T, n, tolerance, batch, threshold, seedCoins int) *simnet.PeerConfig {
	t.Helper()
	pc := &simnet.PeerConfig{
		Cluster:   "test",
		Secret:    []byte("0123456789abcdef0123456789abcdef"),
		T:         tolerance,
		K:         32,
		Batch:     batch,
		Threshold: threshold,
		SeedCoins: seedCoins,
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		addr := ln.Addr().String()
		ln.Close()
		pc.Peers = append(pc.Peers, simnet.Peer{ID: i, Addr: addr})
	}
	if err := pc.Validate(); err != nil {
		t.Fatalf("test config invalid: %v", err)
	}
	return pc
}

func testDaemon(t *testing.T, pc *simnet.PeerConfig, dir string, self, emit int, seed int64, interval time.Duration) *Daemon {
	t.Helper()
	d, err := NewDaemon(DaemonConfig{
		Peers:          pc,
		Self:           self,
		StateDir:       dir,
		Emit:           emit,
		EmitInterval:   interval,
		Rand:           rand.New(rand.NewSource(seed + int64(self)*1009)),
		RoundTimeout:   2 * time.Second,
		DialBackoffMax: 200 * time.Millisecond,
		JoinTimeout:    20 * time.Second,
		Logf:           func(f string, a ...interface{}) { t.Logf("player %d: "+f, append([]interface{}{self}, a...)...) },
	})
	if err != nil {
		t.Fatalf("player %d: NewDaemon: %v", self, err)
	}
	return d
}

func readLogFile(t *testing.T, dir string, player int) string {
	t.Helper()
	data, err := os.ReadFile(CoinLogFile(dir, player))
	if err != nil {
		t.Fatalf("read player %d log: %v", player, err)
	}
	return string(data)
}

// runCluster runs one daemon per player to completion and fails the test
// on any daemon error.
func runCluster(t *testing.T, pc *simnet.PeerConfig, dirs []string, emit int, seed int64) {
	t.Helper()
	n := pc.N()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		d := testDaemon(t, pc, dirs[i], i, emit, seed, 0)
		wg.Add(1)
		go func(i int, d *Daemon) {
			defer wg.Done()
			errs[i] = d.Run(context.Background())
		}(i, d)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("player %d: %v", i, err)
		}
	}
}

// TestDaemonClusterRoundTrip runs a full 7-daemon cluster through enough
// coins to cross a refill boundary and checks every public log is
// byte-identical and complete.
func TestDaemonClusterRoundTrip(t *testing.T) {
	const n, emit = 7, 30
	pc := testPeerConfig(t, n, 1, 24, 6, 24)
	base := t.TempDir()
	dirs := make([]string, n)
	for i := range dirs {
		dirs[i] = filepath.Join(base, fmt.Sprintf("p%d", i))
	}
	// The ceremony writes all players into one directory; scatter the
	// per-player files into per-daemon state dirs like a real deployment.
	ceremony := filepath.Join(base, "deal")
	if err := DealCluster(pc, ceremony, rand.New(rand.NewSource(99))); err != nil {
		t.Fatalf("DealCluster: %v", err)
	}
	scatterStateDirs(t, ceremony, dirs)

	runCluster(t, pc, dirs, emit, 7)

	ref := readLogFile(t, dirs[0], 0)
	if got := countLines(ref); got != emit {
		t.Fatalf("player 0 log has %d entries, want %d", got, emit)
	}
	for i := 1; i < n; i++ {
		if log := readLogFile(t, dirs[i], i); log != ref {
			t.Fatalf("player %d log differs from player 0:\n%q\nvs\n%q", i, log, ref)
		}
	}
	// Seed 24 coins, threshold 6: the refill must have fired before coin 30.
	meta, err := LoadMeta(dirs[0], 0)
	if err != nil {
		t.Fatalf("meta: %v", err)
	}
	if meta.Epoch != 1 {
		t.Fatalf("expected exactly one refill epoch, got %d", meta.Epoch)
	}
}

// TestDaemonRejoinAfterKill kills one daemon mid-run, restarts it, and
// checks the survivors never stall and the rejoined player's final log is
// byte-identical to everyone else's.
func TestDaemonRejoinAfterKill(t *testing.T) {
	const n, emit, victim = 7, 30, 3
	const pace = 100 * time.Millisecond
	pc := testPeerConfig(t, n, 1, 40, 6, 40) // big seed: no refill near the kill window
	base := t.TempDir()
	dirs := make([]string, n)
	for i := range dirs {
		dirs[i] = filepath.Join(base, fmt.Sprintf("p%d", i))
	}
	ceremony := filepath.Join(base, "deal")
	if err := DealCluster(pc, ceremony, rand.New(rand.NewSource(42))); err != nil {
		t.Fatalf("DealCluster: %v", err)
	}
	scatterStateDirs(t, ceremony, dirs)

	errs := make([]error, n)
	var wg sync.WaitGroup
	ctxVictim, cancelVictim := context.WithCancel(context.Background())
	for i := 0; i < n; i++ {
		d := testDaemon(t, pc, dirs[i], i, emit, 11, pace)
		ctx := context.Background()
		if i == victim {
			ctx = ctxVictim
		}
		wg.Add(1)
		go func(i int, d *Daemon, ctx context.Context) {
			defer wg.Done()
			errs[i] = d.Run(ctx)
		}(i, d, ctx)
	}

	// Cancel the victim once its log shows some progress. Cancellation
	// closes its sockets mid-round — the survivors must demote it and
	// keep opening coins without it.
	waitForLogLines(t, CoinLogFile(dirs[victim], victim), 8, 30*time.Second)
	cancelVictim()

	// Let the survivors demote the victim and open a few coins without
	// it, so the restart exercises a genuine catch-up, then bring the
	// victim back.
	waitForLogLines(t, CoinLogFile(dirs[0], 0), 12, 30*time.Second)
	d := testDaemon(t, pc, dirs[victim], victim, emit, 11, pace)
	var rerr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		rerr = d.Run(context.Background())
	}()

	wg.Wait()
	cancelVictim()
	for i, err := range errs {
		if i != victim && err != nil {
			t.Fatalf("survivor %d: %v", i, err)
		}
	}
	if rerr != nil {
		t.Fatalf("rejoined player: %v", rerr)
	}
	ref := readLogFile(t, dirs[0], 0)
	if got := countLines(ref); got != emit {
		t.Fatalf("player 0 log has %d entries, want %d", got, emit)
	}
	for i := 0; i < n; i++ {
		if log := readLogFile(t, dirs[i], i); log != ref {
			t.Fatalf("player %d log differs after rejoin (len %d vs %d)", i, countLines(log), countLines(ref))
		}
	}
}

// TestDaemonColdRestartResumes stops a whole cluster at its Emit target and
// restarts it with a higher target: the daemons must reload their stores,
// reconcile, agree on the longest log, and continue the same stream.
func TestDaemonColdRestartResumes(t *testing.T) {
	const n = 7
	pc := testPeerConfig(t, n, 1, 40, 6, 40)
	base := t.TempDir()
	dirs := make([]string, n)
	for i := range dirs {
		dirs[i] = filepath.Join(base, fmt.Sprintf("p%d", i))
	}
	ceremony := filepath.Join(base, "deal")
	if err := DealCluster(pc, ceremony, rand.New(rand.NewSource(5))); err != nil {
		t.Fatalf("DealCluster: %v", err)
	}
	scatterStateDirs(t, ceremony, dirs)

	runCluster(t, pc, dirs, 10, 3)
	firstLeg := readLogFile(t, dirs[0], 0)

	// Fresh ports for the second leg: a real restart rebinds too.
	pc2 := testPeerConfig(t, n, 1, 40, 6, 40)
	runCluster(t, pc2, dirs, 20, 3)

	ref := readLogFile(t, dirs[0], 0)
	if got := countLines(ref); got != 20 {
		t.Fatalf("player 0 log has %d entries, want 20", got)
	}
	if ref[:len(firstLeg)] != firstLeg {
		t.Fatalf("restart rewrote the first leg of the log")
	}
	for i := 1; i < n; i++ {
		if log := readLogFile(t, dirs[i], i); log != ref {
			t.Fatalf("player %d log differs after cold restart", i)
		}
	}
}

func scatterStateDirs(t *testing.T, ceremony string, dirs []string) {
	t.Helper()
	for i, dir := range dirs {
		if err := os.MkdirAll(dir, 0o700); err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{
			fmt.Sprintf("player-%03d.store", i),
			fmt.Sprintf("player-%03d.meta", i),
		} {
			data, err := os.ReadFile(filepath.Join(ceremony, name))
			if err != nil {
				t.Fatalf("ceremony output %s: %v", name, err)
			}
			if err := os.WriteFile(filepath.Join(dir, name), data, 0o600); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func waitForLogLines(t *testing.T, path string, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(path); err == nil && countLines(string(data)) >= want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("log %s never reached %d lines", path, want)
}

func countLines(s string) int {
	n := 0
	for _, c := range s {
		if c == '\n' {
			n++
		}
	}
	return n
}
