// Command randomizedba runs the paper's motivating application: randomized
// Byzantine agreement driven by shared coins (§1: shared coins "are needed,
// amongst other things, for Byzantine agreement"). Eleven players — two of
// them Byzantine — start from split inputs and must agree. Each agreement
// phase consumes exactly one shared coin from the D-PRBG.
package main

import (
	"crypto/rand"
	"fmt"
	"log"

	"repro"
	"repro/internal/adversary"
	"repro/internal/rba"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n      = 13 // players (n ≥ 6t+1 for the generator, ≥ 5t+1 for RBA)
		t      = 2
		k      = 32
		phases = 16 // residual disagreement probability ≤ 2^-16
	)

	field, err := repro.NewField(k)
	if err != nil {
		return err
	}
	cfg := repro.Config{Field: field, N: n, T: t, BatchSize: phases + 8}
	gens, err := repro.SetupTrusted(cfg, 8, rand.Reader)
	if err != nil {
		return err
	}

	// Split inputs: players < n/2 vote 0, the rest vote 1. Two Byzantine
	// players try to keep the split alive with garbage and silence.
	inputs := make([]byte, n)
	for i := range inputs {
		if i >= n/2 {
			inputs[i] = 1
		}
	}
	byzantine := map[int]repro.PlayerFunc{
		3:  adversary.GarbageSpammer(42, 200, 16),
		10: adversary.SilentFor(200, nil),
	}

	nw := repro.NewNetwork(n)
	fns := make([]repro.PlayerFunc, n)
	for i := 0; i < n; i++ {
		if bf, ok := byzantine[i]; ok {
			fns[i] = bf
			continue
		}
		i := i
		fns[i] = func(nd *repro.Node) (interface{}, error) {
			// Pre-mint enough coins so the agreement itself never triggers
			// a refill mid-protocol, then run RBA on the generator's store.
			if gens[i].Remaining() < phases+2 {
				if err := gens[i].Refill(nd, rand.Reader); err != nil {
					return nil, err
				}
			}
			src := generatorSource{g: gens[i]}
			decided, err := rba.Run(nd, rba.Config{N: n, T: t, Phases: phases, Coins: src}, inputs[i])
			if err != nil {
				return nil, err
			}
			return decided, nil
		}
	}
	results := repro.Run(nw, fns)

	counts := map[byte]int{}
	for i, r := range results {
		if _, bad := byzantine[i]; bad {
			fmt.Printf("player %2d: BYZANTINE\n", i)
			continue
		}
		if r.Err != nil {
			return fmt.Errorf("player %d: %w", i, r.Err)
		}
		d := r.Value.(byte)
		counts[d]++
		fmt.Printf("player %2d: input %d → decided %d\n", i, inputs[i], d)
	}
	if len(counts) != 1 {
		return fmt.Errorf("agreement violated: decisions %v", counts)
	}
	fmt.Printf("\nall %d honest players agreed despite %d Byzantine players;\n", n-len(byzantine), len(byzantine))
	fmt.Printf("the run consumed %d shared coins (one per phase) from the D-PRBG\n", phases)
	return nil
}

// generatorSource adapts a Generator to the coin.Source interface RBA
// expects (exposing directly from the pre-minted store, never refilling
// mid-agreement so every player consumes rounds identically).
type generatorSource struct{ g *repro.Generator }

func (s generatorSource) Expose(nd *repro.Node) (repro.Element, error) {
	return s.g.Next(nd, rand.Reader)
}

func (s generatorSource) ExposeBit(nd *repro.Node) (byte, error) {
	return s.g.NextBit(nd, rand.Reader)
}

func (s generatorSource) ExposeMod(nd *repro.Node, m int) (int, error) {
	return s.g.NextMod(nd, rand.Reader, m)
}

func (s generatorSource) Remaining() int { return s.g.Remaining() }
